/**
 * @file
 * Ablation: SFR screen-partitioning policy. The paper interleaves 64x64
 * tiles; the classic alternative is one contiguous band per GPU. Blocked
 * bands concentrate hot screen regions on single GPUs (fragment-load
 * imbalance for the duplication baseline) but reduce the multi-owner
 * primitive duplication GPUpd pays at tile boundaries.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace chopin;
    using namespace chopin::bench;

    Harness h("Ablation: tile-to-GPU assignment policy", 1);
    h.parse(argc, argv);

    const std::vector<Scheme> schemes = {Scheme::Duplication, Scheme::Gpupd,
                                         Scheme::ChopinCompSched};
    std::vector<SystemConfig> cfgs;
    for (TileAssignment policy :
         {TileAssignment::Interleaved, TileAssignment::Blocked}) {
        SystemConfig cfg;
        cfg.num_gpus = h.gpus();
        cfg.tile_assignment = policy;
        cfgs.push_back(cfg);
    }
    h.prefetch(h.grid(schemes, cfgs));

    TextTable table({"assignment", "scheme", "gmean speedup vs interleaved "
                                             "duplication"});
    // Baseline: interleaved duplication (the paper's configuration). The
    // scenario fingerprint covers tile_assignment like every other config
    // field, so the blocked variants cache like any other cell.
    for (const SystemConfig &cfg : cfgs) {
        const char *policy_name =
            cfg.tile_assignment == TileAssignment::Interleaved ? "interleaved"
                                                               : "blocked";
        for (Scheme s : schemes) {
            std::vector<double> speedups;
            for (const std::string &name : h.benchmarks()) {
                const FrameResult &base =
                    h.run(Scheme::Duplication, name, cfgs[0]);
                const FrameResult &r = h.run(s, name, cfg);
                speedups.push_back(speedupOver(base, r));
            }
            table.addRow({policy_name, toString(s),
                          formatDouble(gmean(speedups), 3) + "x"});
        }
    }
    h.emit(table);
    return 0;
}

/**
 * @file
 * Section VI-F: hardware cost of the two schedulers. The draw-command
 * scheduler keeps two 64-bit triangle counters per GPU (128 B at 8 GPUs);
 * the image-composition scheduler keeps, per GPU, a 1-byte group id, three
 * single-bit flags, and two N-bit vectors (27 B at 8 GPUs).
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace chopin;
    using namespace chopin::bench;

    Harness h("Scheduler hardware cost (Section VI-F)", 1);
    h.parse(argc, argv);

    TextTable table({"gpus", "draw-sched bytes", "comp-sched bits/entry",
                     "comp-sched bytes"});
    for (unsigned n : {2u, 4u, 8u, 16u, 32u}) {
        // Draw scheduler: per GPU, scheduled + processed triangle counters,
        // 64 bits each (conservative, covers billion-triangle frames).
        unsigned draw_bytes = n * 2 * 8;
        // Composition scheduler per entry: CGID (8b) + Ready/Receiving/
        // Sending (3b) + SentGPUs (N bits) + ReceivedGPUs (N bits).
        unsigned bits_per_entry = 8 + 3 + 2 * n;
        unsigned comp_bytes = (n * bits_per_entry + 7) / 8;
        table.addRow({std::to_string(n), std::to_string(draw_bytes),
                      std::to_string(bits_per_entry),
                      std::to_string(comp_bytes)});
    }
    h.emit(table);
    std::cout << "(paper, 8 GPUs: 128 bytes draw scheduler, 27 bytes "
                 "composition scheduler)\n";
    return 0;
}

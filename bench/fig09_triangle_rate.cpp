/**
 * @file
 * Fig. 9: per-draw triangle rate (cycles per triangle) of the geometry
 * stage vs the whole pipeline, across the draw commands of one frame.
 * The paper's point: the geometry-stage rate tracks the whole-pipeline
 * rate, so remaining geometry-stage triangles are a usable estimate of a
 * GPU's remaining workload (the draw-command scheduler's heuristic).
 *
 * Prints summary statistics plus (with --series) the full per-draw series.
 */

#include <algorithm>
#include <cmath>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace chopin;
    using namespace chopin::bench;

    Harness h("Fig. 9: per-draw triangle rates, geometry vs whole pipeline",
              1);
    h.addFlag("series", "false", "print the full per-draw CSV series");
    h.parse(argc, argv);

    TextTable table({"benchmark", "draws", "geom cyc/tri p50",
                     "geom cyc/tri p95", "pipeline cyc/tri p50",
                     "pipeline cyc/tri p95", "rate correlation"});

    for (const std::string &name : h.benchmarks()) {
        SystemConfig cfg;
        const FrameResult &r = h.run(Scheme::SingleGpu, name, cfg);

        std::vector<double> geom_rate, total_rate;
        for (const DrawTiming &d : r.draw_timings) {
            double tris = static_cast<double>(std::max<std::uint64_t>(1, d.tris));
            geom_rate.push_back(static_cast<double>(d.geom_cycles) / tris);
            total_rate.push_back(
                static_cast<double>(d.geom_cycles + d.raster_cycles +
                                    d.frag_cycles) /
                tris);
        }

        // Pearson correlation between the two rate series (the paper's
        // argument needs them to track each other).
        double n = static_cast<double>(geom_rate.size());
        double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
        for (std::size_t i = 0; i < geom_rate.size(); ++i) {
            sx += geom_rate[i];
            sy += total_rate[i];
            sxx += geom_rate[i] * geom_rate[i];
            syy += total_rate[i] * total_rate[i];
            sxy += geom_rate[i] * total_rate[i];
        }
        double corr = (n * sxy - sx * sy) /
                      std::sqrt((n * sxx - sx * sx) * (n * syy - sy * sy));

        auto pct = [](std::vector<double> v, double p) {
            std::sort(v.begin(), v.end());
            return v[static_cast<std::size_t>(p * (v.size() - 1))];
        };
        table.addRow({name, std::to_string(geom_rate.size()),
                      formatDouble(pct(geom_rate, 0.5), 2),
                      formatDouble(pct(geom_rate, 0.95), 2),
                      formatDouble(pct(total_rate, 0.5), 2),
                      formatDouble(pct(total_rate, 0.95), 2),
                      formatDouble(corr, 3)});

        if (h.flags().getBool("series")) {
            std::cout << "series (" << name
                      << "): draw_id,tris,geom_cycles_per_tri,"
                         "pipeline_cycles_per_tri\n";
            for (std::size_t i = 0; i < geom_rate.size(); ++i)
                std::cout << i << "," << r.draw_timings[i].tris << ","
                          << formatDouble(geom_rate[i], 2) << ","
                          << formatDouble(total_rate[i], 2) << "\n";
            std::cout << "\n";
        }
    }
    h.emit(table);
    return 0;
}

/**
 * @file
 * Fig. 18: sensitivity to the draw-command scheduler's progress-update
 * interval (every 1 / 256 / 512 / 1024 triangles). The paper's point: even
 * very infrequent updates barely hurt (1.25x -> 1.22x gmean), so the
 * scheduler scales to much larger systems.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace chopin;
    using namespace chopin::bench;

    Harness h("Fig. 18: draw-scheduler update-interval sensitivity", 1);
    h.parse(argc, argv);

    const std::uint64_t intervals[] = {1, 256, 512, 1024};
    const Scheme schemes[] = {Scheme::Chopin, Scheme::ChopinCompSched,
                              Scheme::ChopinIdeal};
    {
        SystemConfig base;
        base.num_gpus = h.gpus();
        std::vector<SystemConfig> cfgs;
        for (std::uint64_t interval : intervals) {
            SystemConfig cfg = base;
            cfg.sched_update_tris = interval;
            cfgs.push_back(cfg);
        }
        h.prefetch(h.grid({Scheme::Duplication}, {base}));
        h.prefetch(h.grid({schemes[0], schemes[1], schemes[2]}, cfgs));
    }
    TextTable table({"update interval", "CHOPIN", "CHOPIN+CompSched",
                     "IdealCHOPIN"});
    for (std::uint64_t interval : intervals) {
        std::vector<std::string> row{"every " + std::to_string(interval) +
                                     (interval == 1 ? " tri" : " tris")};
        for (Scheme s : schemes) {
            std::vector<double> speedups;
            for (const std::string &name : h.benchmarks()) {
                SystemConfig cfg;
                cfg.num_gpus = h.gpus();
                const FrameResult &base =
                    h.run(Scheme::Duplication, name, cfg);
                cfg.sched_update_tris = interval;
                const FrameResult &r = h.run(s, name, cfg);
                speedups.push_back(speedupOver(base, r));
            }
            row.push_back(formatDouble(gmean(speedups), 3) + "x");
        }
        table.addRow(row);
    }
    h.emit(table);
    return 0;
}

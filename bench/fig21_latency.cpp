/**
 * @file
 * Fig. 21: sensitivity to inter-GPU link latency (100/200/300/400 cycles).
 * The paper's point: CHOPIN's bulk pairwise exchanges amortize latency,
 * while GPUpd's many sequential small messages are latency-bound.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace chopin;
    using namespace chopin::bench;

    Harness h("Fig. 21: speedup over duplication vs link latency", 1);
    h.parse(argc, argv);

    const Tick latencies[] = {100, 200, 300, 400};
    const Scheme schemes[] = {Scheme::Gpupd, Scheme::GpupdIdeal,
                              Scheme::Chopin, Scheme::ChopinCompSched,
                              Scheme::ChopinIdeal};
    {
        std::vector<SystemConfig> cfgs;
        for (Tick lat : latencies) {
            SystemConfig cfg;
            cfg.num_gpus = h.gpus();
            cfg.link.latency = lat;
            cfgs.push_back(cfg);
        }
        h.prefetch(h.grid({Scheme::Duplication, Scheme::Gpupd,
                           Scheme::GpupdIdeal, Scheme::Chopin,
                           Scheme::ChopinCompSched, Scheme::ChopinIdeal},
                          cfgs));
    }
    TextTable table({"latency", "GPUpd", "IdealGPUpd", "CHOPIN",
                     "CHOPIN+CompSched", "IdealCHOPIN"});
    for (Tick lat : latencies) {
        std::vector<std::string> row{std::to_string(lat) + " cycles"};
        for (Scheme s : schemes) {
            std::vector<double> speedups;
            for (const std::string &name : h.benchmarks()) {
                SystemConfig cfg;
                cfg.num_gpus = h.gpus();
                cfg.link.latency = lat;
                const FrameResult &base =
                    h.run(Scheme::Duplication, name, cfg);
                const FrameResult &r = h.run(s, name, cfg);
                speedups.push_back(speedupOver(base, r));
            }
            row.push_back(formatDouble(gmean(speedups), 3) + "x");
        }
        table.addRow(row);
    }
    h.emit(table);
    return 0;
}

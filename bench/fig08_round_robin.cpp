/**
 * @file
 * Fig. 8: performance of CHOPIN with naive round-robin draw-command
 * scheduling, normalized to primitive duplication. The paper's point:
 * without workload-aware scheduling, the heavy-tailed draw sizes leave the
 * GPUs badly imbalanced and CHOPIN can lose to the baseline.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace chopin;
    using namespace chopin::bench;

    Harness h("Fig. 8: round-robin draw scheduling vs duplication", 1);
    h.parse(argc, argv);

    // Columns: the paper's Fig. 8 trio, plus round-robin and balanced
    // scheduling under the composition scheduler, isolating the
    // draw-command scheduler's contribution.
    TextTable table({"benchmark", "Duplication", "GPUpd",
                     "CHOPIN_Round_Robin", "RR+CompSched",
                     "CHOPIN+CompSched"});
    std::vector<std::vector<double>> speedups(4);
    for (const std::string &name : h.benchmarks()) {
        SystemConfig cfg;
        cfg.num_gpus = h.gpus();
        const FrameResult &base = h.run(Scheme::Duplication, name, cfg);
        const FrameResult &gpupd = h.run(Scheme::Gpupd, name, cfg);
        const FrameResult &rr = h.run(Scheme::ChopinRoundRobin, name, cfg);
        FrameResult rr_cs =
            runChopin(cfg, h.trace(name), {DrawPolicy::RoundRobin, true,
                                           false});
        const FrameResult &full = h.run(Scheme::ChopinCompSched, name, cfg);
        double s[4] = {speedupOver(base, gpupd), speedupOver(base, rr),
                       speedupOver(base, rr_cs), speedupOver(base, full)};
        for (int i = 0; i < 4; ++i)
            speedups[i].push_back(s[i]);
        table.addRow({name, "1.00x", formatDouble(s[0], 2) + "x",
                      formatDouble(s[1], 2) + "x",
                      formatDouble(s[2], 2) + "x",
                      formatDouble(s[3], 2) + "x"});
    }
    if (h.benchmarks().size() > 1) {
        std::vector<std::string> row{"GMean", "1.00x"};
        for (auto &col : speedups)
            row.push_back(formatDouble(gmean(col), 2) + "x");
        table.addRow(row);
    }
    h.emit(table);
    return 0;
}

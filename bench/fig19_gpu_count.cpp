/**
 * @file
 * Fig. 19: sensitivity to GPU count (2/4/8/16). For each count, every
 * scheme is normalized to primitive duplication *at the same GPU count*.
 * The paper's point: GPUpd's sequential distribution stops it from scaling,
 * while CHOPIN's composition itself parallelizes with more GPUs, so its
 * advantage grows; the composition scheduler matters more at higher counts.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace chopin;
    using namespace chopin::bench;

    Harness h("Fig. 19: speedup over duplication vs GPU count", 1);
    h.parse(argc, argv);

    const unsigned counts[] = {2, 4, 8, 16};
    const Scheme schemes[] = {Scheme::Gpupd, Scheme::GpupdIdeal,
                              Scheme::Chopin, Scheme::ChopinCompSched,
                              Scheme::ChopinIdeal};
    {
        std::vector<SystemConfig> cfgs;
        for (unsigned gpus : counts) {
            SystemConfig cfg;
            cfg.num_gpus = gpus;
            cfgs.push_back(cfg);
        }
        h.prefetch(h.grid({Scheme::Duplication, Scheme::Gpupd,
                           Scheme::GpupdIdeal, Scheme::Chopin,
                           Scheme::ChopinCompSched, Scheme::ChopinIdeal},
                          cfgs));
    }
    TextTable table({"gpus", "GPUpd", "IdealGPUpd", "CHOPIN",
                     "CHOPIN+CompSched", "IdealCHOPIN"});
    for (unsigned gpus : counts) {
        std::vector<std::string> row{std::to_string(gpus)};
        for (Scheme s : schemes) {
            std::vector<double> speedups;
            for (const std::string &name : h.benchmarks()) {
                SystemConfig cfg;
                cfg.num_gpus = gpus;
                const FrameResult &base =
                    h.run(Scheme::Duplication, name, cfg);
                const FrameResult &r = h.run(s, name, cfg);
                speedups.push_back(speedupOver(base, r));
            }
            row.push_back(formatDouble(gmean(speedups), 3) + "x");
        }
        table.addRow(row);
    }
    h.emit(table);
    return 0;
}

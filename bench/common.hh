/**
 * @file
 * Shared scaffolding for the per-figure benchmark harnesses.
 *
 * Every harness accepts:
 *   --scale=N      trace scale divisor (1 = the paper's full Table III
 *                  sizes; scaled traces are proportional miniatures, see
 *                  trace/profile.hh, so relative results are preserved)
 *   --gpus=N       GPU count where the figure does not sweep it
 *   --bench=X      restrict to one benchmark (default: all eight)
 *   --csv=B        also print a machine-readable CSV block (default true)
 *   --jobs=N       inner renderer host threads (per simulation)
 *   --sweep-jobs=N outer concurrent scenarios (see core/sweep.hh; inner
 *                  rendering is forced serial while scenarios run in
 *                  parallel)
 *   --cache=DIR    on-disk content-addressed result cache (default: the
 *                  CHOPIN_RESULT_CACHE environment variable; empty = off)
 *   --trace-out=F  write a Chrome trace-event JSON timeline of one sample
 *                  scenario (harnesses that support it call
 *                  writeTraceSample(); the path is validated up front)
 *
 * Harness::run() is backed by the sweep engine (core/sweep.hh): results
 * are memoized under the exhaustive scenario fingerprint — never a
 * hand-listed field subset — and shared through the optional disk cache.
 * Harnesses that know their whole grid up front call prefetch() once,
 * which executes every cell scenario-parallel before the first read.
 */

#ifndef CHOPIN_BENCH_COMMON_HH
#define CHOPIN_BENCH_COMMON_HH

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/chopin.hh"
#include "core/sweep.hh"

namespace chopin::bench
{

/** Parsed common options plus the underlying CommandLine. */
class Harness
{
  public:
    /**
     * @param description one-line description printed as the header
     * @param default_scale default trace scale divisor for this figure
     */
    Harness(std::string description, int default_scale);
    ~Harness();

    /** Register an extra flag before parse(). */
    void addFlag(const std::string &name, const std::string &def,
                 const std::string &help)
    {
        cli.addFlag(name, def, help);
    }

    /**
     * Parse and validate argv. Malformed values (e.g. --gpus=-1,
     * --scale=0) produce a "<prog>: error: ..." diagnostic and exit
     * code 2; they never wrap through unsigned conversions.
     */
    void parse(int argc, char **argv);

    int scale() const { return scale_div; }
    unsigned gpus() const { return gpu_count; }
    const std::vector<std::string> &benchmarks() const { return benches; }
    const CommandLine &flags() const { return cli; }

    /** Generate (and cache) the trace for @p bench at the run's scale. */
    const FrameTrace &trace(const std::string &bench);

    /** Run (and cache) a scheme on a benchmark with this config. */
    const FrameResult &run(Scheme scheme, const std::string &bench,
                           const SystemConfig &cfg);

    /**
     * Execute a figure's whole grid scenario-parallel before the first
     * read; every later run() against a grid cell is a memo hit.
     */
    void prefetch(const std::vector<Scenario> &grid);

    /**
     * Convenience grid builder: the cross product of @p schemes x the
     * selected benchmarks for each config in @p cfgs.
     */
    std::vector<Scenario> grid(const std::vector<Scheme> &schemes,
                               const std::vector<SystemConfig> &cfgs) const;

    /** The underlying sweep engine (valid after parse()). */
    SweepRunner &runner();

    /** Print the table, then its CSV block if --csv. */
    void emit(const TextTable &table) const;

    /**
     * If --trace-out was given, simulate @p scheme on the first selected
     * benchmark under @p cfg with the timeline tracer attached and write
     * the Chrome trace-event JSON. The traced run deliberately bypasses
     * the sweep engine: cached results carry no spans, and the recorder
     * must observe a live simulation. No-op when the flag is empty.
     */
    void writeTraceSample(Scheme scheme, const SystemConfig &cfg);

  private:
    CommandLine cli;
    std::string desc;
    int default_scale;
    int scale_div = 1;
    unsigned gpu_count = 8;
    std::vector<std::string> benches;
    std::unique_ptr<SweepRunner> sweep;
};

/** Geometric mean of a non-empty vector of positive ratios. */
double gmean(const std::vector<double> &values);

/** A percentage string with one decimal, e.g. "23.4%". */
std::string percent(double ratio);

} // namespace chopin::bench

#endif // CHOPIN_BENCH_COMMON_HH

/**
 * @file
 * Fig. 4: percentage of execution cycles spent in GPUpd's extra pipeline
 * stages (primitive projection and sequential primitive distribution) for
 * 2/4/8 GPUs. The paper's point: the sequential inter-GPU ID exchange
 * becomes the bottleneck as the GPU count grows.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace chopin;
    using namespace chopin::bench;

    Harness h("Fig. 4: GPUpd primitive projection/distribution overheads",
              1);
    h.parse(argc, argv);

    TextTable table({"benchmark", "gpus", "distribution", "projection",
                     "total overhead"});
    std::vector<double> dist_sum[3], proj_sum[3];
    const unsigned gpu_counts[] = {2, 4, 8};
    for (const std::string &name : h.benchmarks()) {
        for (std::size_t i = 0; i < std::size(gpu_counts); ++i) {
            SystemConfig cfg;
            cfg.num_gpus = gpu_counts[i];
            const FrameResult &r = h.run(Scheme::Gpupd, name, cfg);
            double dist = static_cast<double>(r.breakdown.prim_distribution) /
                          static_cast<double>(r.cycles);
            double proj = static_cast<double>(r.breakdown.prim_projection) /
                          static_cast<double>(r.cycles);
            dist_sum[i].push_back(dist);
            proj_sum[i].push_back(proj);
            table.addRow({name, std::to_string(gpu_counts[i]),
                          percent(dist), percent(proj),
                          percent(dist + proj)});
        }
    }
    if (h.benchmarks().size() > 1) {
        for (std::size_t i = 0; i < std::size(gpu_counts); ++i) {
            double d = 0, p = 0;
            for (double v : dist_sum[i])
                d += v;
            for (double v : proj_sum[i])
                p += v;
            d /= static_cast<double>(dist_sum[i].size());
            p /= static_cast<double>(proj_sum[i].size());
            table.addRow({"Avg", std::to_string(gpu_counts[i]), percent(d),
                          percent(p), percent(d + p)});
        }
    }
    h.emit(table);
    return 0;
}

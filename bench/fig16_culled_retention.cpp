/**
 * @file
 * Fig. 16: sensitivity of CHOPIN's speedup to artificially reduced
 * depth-culling effectiveness (ut3, 8 GPUs). A fixed percentage of
 * early-depth-culled fragments is retained and processed as if it had
 * passed; the paper needed to retain nearly half of all culled fragments to
 * erase CHOPIN's benefit.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace chopin;
    using namespace chopin::bench;

    Harness h("Fig. 16: speedup vs retained depth-culled fragments (ut3)",
              1);
    h.parse(argc, argv);

    std::string name =
        h.benchmarks().size() == 1 ? h.benchmarks()[0] : "ut3";

    SystemConfig base_cfg;
    base_cfg.num_gpus = h.gpus();
    const FrameResult &dup = h.run(Scheme::Duplication, name, base_cfg);

    TextTable table({"retention", "speedup vs duplication",
                     "extra ROP fragments", "retained fragments"});
    for (int pct = 0; pct <= 40; pct += 5) {
        SystemConfig cfg = base_cfg;
        cfg.cull_retention = static_cast<double>(pct) / 100.0;
        const FrameResult &r = h.run(Scheme::ChopinCompSched, name, cfg);
        double extra =
            static_cast<double>(r.retained_culled) /
            static_cast<double>(r.totals.frags_written);
        table.addRow({std::to_string(pct) + "%",
                      formatDouble(speedupOver(dup, r), 3) + "x",
                      percent(extra),
                      std::to_string(r.retained_culled)});
    }
    h.emit(table);
    return 0;
}

/**
 * @file
 * Wall-clock performance harness for the host-parallel rendering engine.
 *
 * Renders each Table III benchmark frame under SingleGpu, Duplication,
 * GPUpd, CHOPIN and CHOPIN+CompSched twice: once with --jobs=1 (serial) and
 * once with the requested job count. For every (benchmark, scheme) pair it
 * asserts that the frame hash, full surface content hash, simulated cycle
 * count and all functional totals are identical — host parallelism must not
 * perturb the simulation — and reports ns/frame, Mtris/s and the
 * serial-over-parallel speedup, plus the geometric-mean speedup.
 *
 * Unlike the fig* harnesses this measures *host* wall-clock time
 * (std::chrono), not simulated cycles; the simulated results are the
 * determinism oracle, not the metric. Writes a JSON summary (default
 * BENCH_frame.json) consumed by tools/bench_json.py.
 */

#include "common.hh"

#include <chrono>
#include <cstdint>
#include <fstream>
#include <limits>

#include "stats/metrics.hh"
#include "stats/report.hh"

namespace
{

using chopin::FrameAccounting;
using chopin::FrameResult;

/** Wall-clock nanoseconds of one invocation of @p fn (steady clock). */
template <typename Fn>
double
elapsedNs(Fn &&fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
}

/** Assert that two runs of one configuration are simulation-identical:
 *  every registered metric, not a hand-picked subset. */
void
checkIdentical(const FrameResult &serial, const FrameResult &parallel,
               const std::string &what)
{
    const FrameAccounting &a = serial;
    const FrameAccounting &b = parallel;
    if (chopin::metricsEqual(a, b))
        return;
    std::string names;
    for (const std::string &n : chopin::metricsDiff(a, b))
        names += (names.empty() ? "" : ", ") + n;
    chopin_assert(false, what, ": metrics differ between --jobs=1 and "
                  "--jobs=N: ", names);
}

struct Measurement
{
    std::string bench;
    std::string scheme;
    std::uint64_t tris = 0;
    double ns_serial = 0.0;
    double ns_parallel = 0.0;
    double speedup = 0.0;
    std::uint64_t frame_hash = 0;
    std::uint64_t cycles = 0;
};

double
mtrisPerSecond(std::uint64_t tris, double ns)
{
    return ns <= 0.0 ? 0.0 : static_cast<double>(tris) * 1000.0 / ns;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace chopin;
    using namespace chopin::bench;

    Harness h("Wall-clock frame rendering: serial vs parallel host engine",
              8);
    h.addFlag("repeat", "3", "timed repetitions per configuration (best-of)");
    h.addFlag("out", "BENCH_frame.json",
              "JSON summary path (empty = don't write)");
    h.parse(argc, argv);

    // parse() applied --jobs (default: CHOPIN_JOBS env or hardware
    // concurrency); remember it before the serial passes override it.
    unsigned jobs_parallel = globalJobs();
    int repeat = std::max(1, static_cast<int>(h.flags().getInt("repeat")));
    std::string out_path = h.flags().getString("out");
    if (!out_path.empty())
        checkWritablePath(out_path, "--out");

    const Scheme schemes[] = {Scheme::SingleGpu, Scheme::Duplication,
                              Scheme::Gpupd, Scheme::Chopin,
                              Scheme::ChopinCompSched};

    TextTable table({"benchmark", "scheme", "ktris", "ns/frame j1",
                     "ns/frame j" + std::to_string(jobs_parallel),
                     "Mtris/s", "speedup"});
    std::vector<Measurement> measurements;
    std::vector<double> speedups;

    for (const std::string &name : h.benchmarks()) {
        const FrameTrace &tr = h.trace(name);
        std::uint64_t tris = 0;
        for (const DrawCommand &cmd : tr.draws)
            tris += cmd.triangleCount();

        SystemConfig cfg;
        cfg.num_gpus = h.gpus();

        for (Scheme scheme : schemes) {
            Measurement m;
            m.bench = name;
            m.scheme = toString(scheme);
            m.tris = tris;

            FrameResult serial;
            FrameResult parallel;
            m.ns_serial = std::numeric_limits<double>::infinity();
            m.ns_parallel = std::numeric_limits<double>::infinity();

            // Direct runScheme on purpose: this harness measures the wall
            // clock of the computation itself, so memoized/cached results
            // would defeat the measurement.
            setGlobalJobs(1);
            for (int rep = 0; rep < repeat; ++rep) {
                double ns = elapsedNs([&] {
                    serial = runScheme( // chopin-lint: allow(bench-runscheme)
                        scheme, cfg, tr);
                });
                m.ns_serial = std::min(m.ns_serial, ns);
            }

            setGlobalJobs(jobs_parallel);
            for (int rep = 0; rep < repeat; ++rep) {
                double ns = elapsedNs([&] {
                    parallel = runScheme( // chopin-lint: allow(bench-runscheme)
                        scheme, cfg, tr);
                });
                m.ns_parallel = std::min(m.ns_parallel, ns);
            }

            checkIdentical(serial, parallel, name + "/" + m.scheme);
            m.speedup = m.ns_parallel > 0.0 ? m.ns_serial / m.ns_parallel
                                            : 1.0;
            m.frame_hash = serial.frame_hash;
            m.cycles = serial.cycles;
            measurements.push_back(m);
            speedups.push_back(m.speedup);

            table.addRow({name, m.scheme,
                          std::to_string(tris / 1000),
                          formatDouble(m.ns_serial, 0),
                          formatDouble(m.ns_parallel, 0),
                          formatDouble(mtrisPerSecond(tris, m.ns_parallel),
                                       2),
                          formatDouble(m.speedup, 2) + "x"});
        }
    }

    double gmean_speedup = gmean(speedups);
    table.addRow({"GMean", "-", "-", "-", "-", "-",
                  formatDouble(gmean_speedup, 2) + "x"});
    h.emit(table);

    if (!out_path.empty()) {
        std::ofstream out(out_path);
        chopin_assert(out.good(), "cannot write ", out_path);
        JsonWriter w(out);
        w.beginObject();
        w.field("scale", h.scale());
        w.field("gpus", h.gpus());
        w.field("jobs_parallel", jobs_parallel);
        w.field("repeat", repeat);
        w.field("gmean_speedup", gmean_speedup);
        w.key("results");
        w.beginArray();
        for (const Measurement &m : measurements) {
            w.beginObject();
            w.field("bench", m.bench);
            w.field("scheme", m.scheme);
            w.field("tris", m.tris);
            w.field("ns_frame_serial", m.ns_serial);
            w.field("ns_frame_parallel", m.ns_parallel);
            w.field("mtris_per_s", mtrisPerSecond(m.tris, m.ns_parallel));
            w.field("speedup", m.speedup);
            w.field("frame_hash", m.frame_hash);
            w.field("cycles", m.cycles);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        w.finish();
        std::cout << "wrote " << out_path << "\n";
    }

    SystemConfig trace_cfg;
    trace_cfg.num_gpus = h.gpus();
    h.writeTraceSample(Scheme::ChopinCompSched, trace_cfg);
    return 0;
}

/**
 * @file
 * Wall-clock performance harness for the host-parallel rendering engine.
 *
 * Renders each Table III benchmark frame under SingleGpu, Duplication,
 * GPUpd, CHOPIN and CHOPIN+CompSched twice: once with --jobs=1 (serial) and
 * once with the requested job count. For every (benchmark, scheme) pair it
 * asserts that the frame hash, full surface content hash, simulated cycle
 * count and all functional totals are identical — host parallelism must not
 * perturb the simulation — and reports ns/frame, Mtris/s and the
 * serial-over-parallel speedup, plus the geometric-mean speedup.
 *
 * Unlike the fig* harnesses this measures *host* wall-clock time
 * (std::chrono), not simulated cycles; the simulated results are the
 * determinism oracle, not the metric. Writes a JSON summary (default
 * BENCH_frame.json) consumed by tools/bench_json.py.
 *
 * Two engine-level series ride along in the same JSON:
 *  - `timing_speedup`: wall-clock serial/parallel ratio of the
 *    epoch-parallel timing engine (sim/parallel_engine.hh) on a synthetic
 *    cross-partition workload with a checksum oracle — the scalability
 *    gate for the ParallelEngine itself, independent of renderer cost
 *    (gated in CI via bench_json.py --series timing --min-speedup).
 *  - `event_queue_ns_per_event`: schedule+dispatch cost of one EventQueue
 *    event with an inline (small-buffer) callback capture.
 *  - `raster_speedup`: ns/pixel of the quad rasterizer's native SIMD lanes
 *    over the one-pixel-at-a-time scalar reference (both compiled from the
 *    same kernel in gfx/raster.hh), on a deterministic triangle soup. An
 *    order-sensitive fragment hash proves the two paths emitted the exact
 *    same fragments before the ratio means anything (gated in CI via
 *    bench_json.py --series raster --min-speedup).
 *  - `stream_speedup`: wall-clock serial/parallel ratio of the frame-stream
 *    pipeline (sfr/sequence.hh) rendering a 16-frame orbit sequence under
 *    hybrid AFR+SFR, with frames simulated scenario-parallel on the pool.
 *    Every registered stream metric — including the sequence hash folding
 *    each frame's hash and completion tick — must be bit-identical between
 *    the two legs before the ratio is reported (gated in CI via
 *    bench_json.py --series stream --min-speedup). --stream-out additionally
 *    writes a standalone BENCH_stream.json with one row per stream scheme
 *    (pure SFR / pure AFR / hybrid), same contract as the main dump.
 */

#include "common.hh"

#include <bit>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <limits>

#include "gfx/raster.hh"
#include "net/interconnect.hh"
#include "trace/generator.hh"
#include "net/partitioned_net.hh"
#include "sim/event_queue.hh"
#include "sim/parallel_engine.hh"
#include "stats/metrics.hh"
#include "stats/report.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace
{

using chopin::Bytes;
using chopin::FrameAccounting;
using chopin::FrameResult;
using chopin::GpuId;
using chopin::Interconnect;
using chopin::LinkParams;
using chopin::ParallelEngine;
using chopin::PartitionedNet;
using chopin::PartitionId;
using chopin::Tick;
using chopin::TrafficClass;

/** Wall-clock nanoseconds of one invocation of @p fn (steady clock). */
template <typename Fn>
double
elapsedNs(Fn &&fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
}

/** Assert that two runs of one configuration are simulation-identical:
 *  every registered metric, not a hand-picked subset. */
void
checkIdentical(const FrameResult &serial, const FrameResult &parallel,
               const std::string &what)
{
    const FrameAccounting &a = serial;
    const FrameAccounting &b = parallel;
    if (chopin::metricsEqual(a, b))
        return;
    std::string names;
    for (const std::string &n : chopin::metricsDiff(a, b))
        names += (names.empty() ? "" : ", ") + n;
    chopin_assert(false, what, ": metrics differ between --jobs=1 and "
                  "--jobs=N: ", names);
}

/** Same idea for a whole stream run: every registered stream metric (which
 *  folds the per-frame hashes and completion ticks via the sequence hash)
 *  must be identical between the serial and parallel legs. */
void
checkIdenticalStream(const chopin::SequenceResult &serial,
                     const chopin::SequenceResult &parallel,
                     const std::string &what)
{
    const chopin::SequenceAccounting &a = serial;
    const chopin::SequenceAccounting &b = parallel;
    if (chopin::metricsEqual(a, b))
        return;
    std::string names;
    for (const std::string &n : chopin::metricsDiff(a, b))
        names += (names.empty() ? "" : ", ") + n;
    chopin_assert(false, what, ": stream metrics differ between --jobs=1 "
                  "and --jobs=N: ", names);
}

struct Measurement
{
    std::string bench;
    std::string scheme;
    std::uint64_t tris = 0;
    double ns_serial = 0.0;
    double ns_parallel = 0.0;
    double speedup = 0.0;
    std::uint64_t frame_hash = 0;
    std::uint64_t cycles = 0;
};

double
mtrisPerSecond(std::uint64_t tris, double ns)
{
    return ns <= 0.0 ? 0.0 : static_cast<double>(tris) * 1000.0 / ns;
}

/** A few hundred nanoseconds of serially-dependent arithmetic, so one
 *  stress event is comparable to a real timing-model event (resource
 *  claims, span staging) rather than an empty callback — otherwise the
 *  epoch barrier cost dominates and the measurement says nothing. */
std::uint64_t
spinWork(std::uint64_t seed)
{
    std::uint64_t x = seed | 1;
    for (int i = 0; i < 96; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    return x;
}

struct EpochStressResult
{
    std::uint64_t checksum = 0;
    std::uint64_t events = 0;
    std::uint64_t epochs = 0;
    bool used_barrier = false;
};

/**
 * The ParallelEngine scalability workload: 8 partitions exchanging
 * messages over a real Interconnect through PartitionedNet, each round
 * posting a batch of partition-local work events inside the lookahead
 * window. Every effect folds into a per-partition checksum, and the
 * final checksum also folds the interconnect counters — the oracle that
 * the serial and parallel executions were the same simulation.
 */
EpochStressResult
runEpochStress()
{
    constexpr unsigned n = 8;
    constexpr int rounds = 40;
    constexpr int batch = 192;

    LinkParams link; // 64 B/cycle, 200-cycle latency
    Interconnect net(n, link);
    ParallelEngine engine(n, link.latency);
    PartitionedNet pnet(net, engine);
    std::vector<std::uint64_t> sums(n, 0); // [p] touched only by partition p

    struct Round
    {
        ParallelEngine *engine;
        PartitionedNet *pnet;
        std::vector<std::uint64_t> *sums;
        unsigned n;

        void
        run(PartitionId p, int remaining) const
        {
            Tick now = engine->now(p);
            for (int i = 0; i < batch; ++i) {
                engine->postAt(p, now + 1 + static_cast<Tick>(i % 7),
                               [this, p, i]() {
                                   (*sums)[p] +=
                                       spinWork((*sums)[p] +
                                                static_cast<std::uint64_t>(i));
                               });
            }
            GpuId dst = (p + 1) % n;
            pnet->send(p, dst, 4096 + 64 * static_cast<Bytes>(p), now,
                       TrafficClass::Composition, [this, dst]() {
                           (*sums)[dst] ^= spinWork(engine->now(dst));
                       });
            if (remaining > 0) {
                engine->postAt(p, now + engine->lookahead(),
                               [this, p, remaining]() {
                                   run(p, remaining - 1);
                               });
            }
        }
    };
    Round round{&engine, &pnet, &sums, n};

    for (PartitionId p = 0; p < n; ++p)
        engine.postAt(p, p * 3, [&round, p]() { round.run(p, rounds); });
    Tick end = engine.run();

    EpochStressResult r;
    r.events = engine.eventsExecuted();
    r.epochs = engine.epochs();
    r.used_barrier = engine.usedBarrierPath();
    std::uint64_t cs = 1469598103934665603ull;
    auto fold = [&cs](std::uint64_t v) {
        cs = (cs ^ v) * 1099511628211ull;
    };
    for (std::uint64_t s : sums)
        fold(s);
    fold(end);
    fold(net.traffic().total);
    fold(net.traffic().messages);
    fold(net.lastDelivery());
    r.checksum = cs;
    return r;
}

/** Schedule+dispatch cost of one EventQueue event whose capture fits the
 *  InlineFunction small buffer (the common case for timing-model events). */
double
measureEventQueueNs(int repeat)
{
    constexpr int events = 1 << 17;
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < repeat; ++rep) {
        chopin::EventQueue eq;
        eq.reserve(events);
        std::uint64_t sum = 0;
        double ns = elapsedNs([&] {
            for (int i = 0; i < events; ++i)
                eq.schedule(static_cast<chopin::Tick>(i % 1024),
                            [&sum, i] { sum += static_cast<unsigned>(i); });
            eq.run();
        });
        chopin_assert(sum == std::uint64_t(events) * (events - 1) / 2,
                      "event queue bench dropped events");
        best = std::min(best, ns / events);
    }
    return best;
}

/**
 * Deterministic screen-space triangle soup for the raster series: moderate
 * triangles scattered over the viewport, distinct per-vertex z and color so
 * the interpolation lanes do real work. Seeded Rng (PCG32) so every run and
 * every build rasterizes the identical soup.
 */
std::vector<chopin::ScreenTriangle>
makeRasterSoup(int width, int height, int count)
{
    using chopin::ScreenTriangle;
    chopin::Rng rng(0x5eed0c09u);
    std::vector<ScreenTriangle> soup;
    soup.reserve(static_cast<std::size_t>(count));
    const float w = static_cast<float>(width);
    const float hgt = static_cast<float>(height);
    for (int i = 0; i < count; ++i) {
        const float cx = rng.nextFloat(0.0f, w);
        const float cy = rng.nextFloat(0.0f, hgt);
        ScreenTriangle st;
        for (chopin::ScreenVertex &v : st.v) {
            v.pos = {cx + rng.nextFloat(-60.0f, 60.0f),
                     cy + rng.nextFloat(-60.0f, 60.0f)};
            v.z = rng.nextFloat(0.05f, 0.95f);
            v.color = {rng.nextFloat(), rng.nextFloat(), rng.nextFloat(),
                       rng.nextFloat(0.25f, 1.0f)};
        }
        st.cacheBounds(width, height);
        soup.push_back(st);
    }
    return soup;
}

struct RasterOracle
{
    std::uint64_t pixels = 0; ///< covered pixels over one soup pass
    std::uint64_t hash = 0;   ///< order-sensitive fragment hash
};

/**
 * Untimed equality oracle: fold every fragment (position, z and color down
 * to the float bit pattern, in emission order) into an FNV hash. Scalar and
 * SIMD lanes must produce the same hash or the timing ratio compares two
 * different computations.
 */
template <typename Lanes>
RasterOracle
rasterOracle(const std::vector<chopin::ScreenTriangle> &soup,
             const chopin::Viewport &vp, const chopin::PixelRect &full)
{
    RasterOracle o;
    o.hash = 1469598103934665603ull;
    auto fold = [&o](std::uint32_t v) {
        o.hash = (o.hash ^ v) * 1099511628211ull;
    };
    auto sink = [&](const chopin::Fragment &f) {
        ++o.pixels;
        fold(static_cast<std::uint32_t>(f.x));
        fold(static_cast<std::uint32_t>(f.y));
        fold(std::bit_cast<std::uint32_t>(f.z));
        fold(std::bit_cast<std::uint32_t>(f.color.r));
        fold(std::bit_cast<std::uint32_t>(f.color.g));
        fold(std::bit_cast<std::uint32_t>(f.color.b));
        fold(std::bit_cast<std::uint32_t>(f.color.a));
    };
    for (const chopin::ScreenTriangle &st : soup)
        chopin::rasterizeTriangleInRectAs<Lanes>(st, vp, full, sink);
    return o;
}

/**
 * Timed pass: the quad-aware span sink the binned renderer's hot path uses,
 * kept deliberately cheap (popcount + one stored lane folded) so the
 * measurement is the kernel, not the sink. Returns best-of-@p repeat
 * nanoseconds for @p passes full-soup rasterizations.
 */
template <typename Lanes>
double
rasterTimedNs(const std::vector<chopin::ScreenTriangle> &soup,
              const chopin::Viewport &vp, const chopin::PixelRect &full,
              int passes, int repeat, std::uint64_t expected_pixels)
{
    double best = std::numeric_limits<double>::infinity();
    std::uint32_t fold_ref = 0;
    for (int rep = 0; rep < repeat; ++rep) {
        std::uint64_t pixels = 0;
        std::uint32_t fold = 0;
        double ns = elapsedNs([&] {
            auto sink = [&](const chopin::FragmentSpan &span) {
                pixels += static_cast<std::uint32_t>(
                    std::popcount(span.mask));
                fold ^= std::bit_cast<std::uint32_t>(span.z[0]);
            };
            for (int pass = 0; pass < passes; ++pass)
                for (const chopin::ScreenTriangle &st : soup)
                    chopin::rasterizeTriangleInRectAs<Lanes>(st, vp, full,
                                                             sink);
        });
        chopin_assert(pixels ==
                          expected_pixels * static_cast<std::uint64_t>(passes),
                      "raster bench: timed pass coverage diverged from the "
                      "oracle pass");
        // Keeps the interpolation fold observable and doubles as a
        // repetition-determinism check.
        if (rep == 0)
            fold_ref = fold;
        chopin_assert(fold == fold_ref,
                      "raster bench: timed repetitions diverged");
        best = std::min(best, ns);
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace chopin;
    using namespace chopin::bench;

    Harness h("Wall-clock frame rendering: serial vs parallel host engine",
              8);
    h.addFlag("repeat", "3", "timed repetitions per configuration (best-of)");
    h.addFlag("out", "BENCH_frame.json",
              "JSON summary path (empty = don't write)");
    h.addFlag("stream-out", "",
              "standalone stream-series JSON path (empty = don't write)");
    h.parse(argc, argv);

    // parse() applied --jobs (default: CHOPIN_JOBS env or hardware
    // concurrency); remember it before the serial passes override it.
    unsigned jobs_parallel = globalJobs();
    int repeat = std::max(1, static_cast<int>(h.flags().getInt("repeat")));
    std::string out_path = h.flags().getString("out");
    if (!out_path.empty())
        checkWritablePath(out_path, "--out");
    std::string stream_out_path = h.flags().getString("stream-out");
    if (!stream_out_path.empty())
        checkWritablePath(stream_out_path, "--stream-out");

    const Scheme schemes[] = {Scheme::SingleGpu, Scheme::Duplication,
                              Scheme::Gpupd, Scheme::Chopin,
                              Scheme::ChopinCompSched};

    TextTable table({"benchmark", "scheme", "ktris", "ns/frame j1",
                     "ns/frame j" + std::to_string(jobs_parallel),
                     "Mtris/s", "speedup"});
    std::vector<Measurement> measurements;
    std::vector<double> speedups;

    for (const std::string &name : h.benchmarks()) {
        const FrameTrace &tr = h.trace(name);
        std::uint64_t tris = 0;
        for (const DrawCommand &cmd : tr.draws)
            tris += cmd.triangleCount();

        SystemConfig cfg;
        cfg.num_gpus = h.gpus();

        for (Scheme scheme : schemes) {
            Measurement m;
            m.bench = name;
            m.scheme = toString(scheme);
            m.tris = tris;

            FrameResult serial;
            FrameResult parallel;
            m.ns_serial = std::numeric_limits<double>::infinity();
            m.ns_parallel = std::numeric_limits<double>::infinity();

            // Direct runScheme on purpose: this harness measures the wall
            // clock of the computation itself, so memoized/cached results
            // would defeat the measurement.
            setGlobalJobs(1);
            for (int rep = 0; rep < repeat; ++rep) {
                double ns = elapsedNs([&] {
                    serial = runScheme( // chopin-lint: allow(bench-runscheme)
                        scheme, cfg, tr);
                });
                m.ns_serial = std::min(m.ns_serial, ns);
            }

            setGlobalJobs(jobs_parallel);
            for (int rep = 0; rep < repeat; ++rep) {
                double ns = elapsedNs([&] {
                    parallel = runScheme( // chopin-lint: allow(bench-runscheme)
                        scheme, cfg, tr);
                });
                m.ns_parallel = std::min(m.ns_parallel, ns);
            }

            checkIdentical(serial, parallel, name + "/" + m.scheme);
            m.speedup = m.ns_parallel > 0.0 ? m.ns_serial / m.ns_parallel
                                            : 1.0;
            m.frame_hash = serial.frame_hash;
            m.cycles = serial.cycles;
            measurements.push_back(m);
            speedups.push_back(m.speedup);

            table.addRow({name, m.scheme,
                          std::to_string(tris / 1000),
                          formatDouble(m.ns_serial, 0),
                          formatDouble(m.ns_parallel, 0),
                          formatDouble(mtrisPerSecond(tris, m.ns_parallel),
                                       2),
                          formatDouble(m.speedup, 2) + "x"});
        }
    }

    double gmean_speedup = gmean(speedups);
    table.addRow({"GMean", "-", "-", "-", "-", "-",
                  formatDouble(gmean_speedup, 2) + "x"});
    h.emit(table);

    // Epoch-parallel engine scalability: the same synthetic workload run
    // serially and on the pool must produce the same checksum (bit-identical
    // simulation), and the wall-clock ratio is the `timing_speedup` series
    // gated in CI. The serial run must never touch the barrier machinery.
    double timing_ns_serial = std::numeric_limits<double>::infinity();
    double timing_ns_parallel = std::numeric_limits<double>::infinity();
    std::uint64_t timing_checksum = 0;
    std::uint64_t timing_events = 0;

    setGlobalJobs(1);
    for (int rep = 0; rep < repeat; ++rep) {
        EpochStressResult r;
        double ns = elapsedNs([&] { r = runEpochStress(); });
        chopin_assert(!r.used_barrier,
                      "epoch stress: --jobs=1 entered the barrier path");
        chopin_assert(rep == 0 || r.checksum == timing_checksum,
                      "epoch stress: serial repetitions diverged");
        timing_checksum = r.checksum;
        timing_events = r.events;
        timing_ns_serial = std::min(timing_ns_serial, ns);
    }

    setGlobalJobs(jobs_parallel);
    for (int rep = 0; rep < repeat; ++rep) {
        EpochStressResult r;
        double ns = elapsedNs([&] { r = runEpochStress(); });
        chopin_assert(r.used_barrier == (jobs_parallel > 1),
                      "epoch stress: unexpected execution path at --jobs=",
                      jobs_parallel);
        chopin_assert(r.checksum == timing_checksum,
                      "epoch stress: --jobs=", jobs_parallel,
                      " checksum diverged from --jobs=1");
        timing_ns_parallel = std::min(timing_ns_parallel, ns);
    }
    double timing_speedup = timing_ns_parallel > 0.0
                                ? timing_ns_serial / timing_ns_parallel
                                : 1.0;

    double event_queue_ns = measureEventQueueNs(repeat);

    // Quad-rasterizer series: native SIMD lanes vs the one-pixel scalar
    // reference, both instantiated from the same kernel. The fragment-hash
    // oracle runs first — a speedup between two non-identical computations
    // would be meaningless.
    const Viewport raster_vp{512, 512};
    const PixelRect raster_full{0, 0, raster_vp.width - 1,
                                raster_vp.height - 1};
    const std::vector<ScreenTriangle> soup =
        makeRasterSoup(raster_vp.width, raster_vp.height, 384);
    const RasterOracle oracle_scalar =
        rasterOracle<simd::ScalarLanes<1>>(soup, raster_vp, raster_full);
    const RasterOracle oracle_simd =
        rasterOracle<simd::NativeLanes>(soup, raster_vp, raster_full);
    chopin_assert(oracle_scalar.pixels == oracle_simd.pixels &&
                      oracle_scalar.hash == oracle_simd.hash,
                  "raster bench: ", simd::kNativeBackend,
                  " lanes are not bit-identical to the scalar reference");
    constexpr int raster_passes = 6;
    double raster_ns_scalar =
        rasterTimedNs<simd::ScalarLanes<1>>(soup, raster_vp, raster_full,
                                            raster_passes, repeat,
                                            oracle_scalar.pixels);
    double raster_ns_simd =
        rasterTimedNs<simd::NativeLanes>(soup, raster_vp, raster_full,
                                         raster_passes, repeat,
                                         oracle_scalar.pixels);
    double raster_px = static_cast<double>(oracle_scalar.pixels) *
                       raster_passes;
    double raster_ns_per_pixel_scalar =
        raster_px > 0.0 ? raster_ns_scalar / raster_px : 0.0;
    double raster_ns_per_pixel =
        raster_px > 0.0 ? raster_ns_simd / raster_px : 0.0;
    double raster_speedup =
        raster_ns_simd > 0.0 ? raster_ns_scalar / raster_ns_simd : 1.0;

    // Frame-stream series: a 16-frame orbit sequence through the stream
    // pipeline under all three stream schemes. Frames simulate
    // scenario-parallel on the pool, so the checksum oracle — full
    // registered-metric equality, including the sequence hash over every
    // frame's hash and completion tick — runs before any ratio is reported.
    // The hybrid AFR+SFR leg is the `stream_speedup` series gated in CI.
    constexpr std::uint32_t stream_frames = 16;
    SequenceParams stream_params;
    stream_params.num_frames = stream_frames;
    stream_params.path = CameraPath::Orbit;
    const SequenceTrace stream_seq =
        generateBenchmarkSequence("wolf", h.scale(), stream_params);
    std::uint64_t stream_tris = 0;
    for (const DrawCommand &cmd : stream_seq.base.draws)
        stream_tris += cmd.triangleCount();
    stream_tris *= stream_frames;

    SystemConfig stream_cfg;
    stream_cfg.num_gpus = h.gpus();
    const unsigned hybrid_groups = stream_cfg.num_gpus % 2 == 0 ? 2 : 1;

    struct StreamMeasurement
    {
        SequenceScheme scheme = SequenceScheme::HybridAfrSfr;
        double ns_serial = std::numeric_limits<double>::infinity();
        double ns_parallel = std::numeric_limits<double>::infinity();
        double speedup = 0.0;
        SequenceResult result; ///< serial leg (oracle-checked == parallel)
    };
    std::vector<StreamMeasurement> stream_runs;
    std::vector<double> stream_speedups;
    for (SequenceScheme scheme :
         {SequenceScheme::PureSfr, SequenceScheme::PureAfr,
          SequenceScheme::HybridAfrSfr}) {
        SequenceOptions opt;
        opt.scheme = scheme;
        opt.afr_groups = hybrid_groups;
        StreamMeasurement m;
        m.scheme = scheme;
        SequenceResult parallel;

        setGlobalJobs(1);
        for (int rep = 0; rep < repeat; ++rep) {
            double ns = elapsedNs([&] {
                m.result = runSequence(opt, stream_cfg, stream_seq);
            });
            m.ns_serial = std::min(m.ns_serial, ns);
        }
        setGlobalJobs(jobs_parallel);
        for (int rep = 0; rep < repeat; ++rep) {
            double ns = elapsedNs([&] {
                parallel = runSequence(opt, stream_cfg, stream_seq);
            });
            m.ns_parallel = std::min(m.ns_parallel, ns);
        }
        checkIdenticalStream(m.result, parallel,
                             std::string("stream/") + toString(scheme));
        m.speedup = m.ns_parallel > 0.0 ? m.ns_serial / m.ns_parallel : 1.0;
        stream_speedups.push_back(m.speedup);
        stream_runs.push_back(std::move(m));
    }
    const StreamMeasurement &hybrid_run = stream_runs.back();
    double stream_speedup = hybrid_run.speedup;
    double stream_frames_per_s =
        hybrid_run.ns_parallel > 0.0
            ? static_cast<double>(stream_frames) * 1e9 /
                  hybrid_run.ns_parallel
            : 0.0;

    std::cout << "\nepoch engine: " << timing_events << " events, "
              << formatDouble(timing_ns_serial / 1e6, 2) << " ms j1, "
              << formatDouble(timing_ns_parallel / 1e6, 2) << " ms j"
              << jobs_parallel << ", timing speedup "
              << formatDouble(timing_speedup, 2) << "x\n"
              << "event queue: "
              << formatDouble(event_queue_ns, 1) << " ns/event\n"
              << "raster kernel: " << simd::kNativeBackend << " x"
              << simd::NativeLanes::width << ", "
              << formatDouble(raster_ns_per_pixel_scalar, 2)
              << " ns/px scalar, " << formatDouble(raster_ns_per_pixel, 2)
              << " ns/px simd, " << formatDouble(raster_speedup, 2)
              << "x speedup (" << oracle_scalar.pixels
              << " px/pass, hashes identical)\n"
              << "stream pipeline: " << stream_frames
              << "-frame wolf orbit on " << stream_cfg.num_gpus
              << " GPUs, hybrid " << hybrid_groups << "x"
              << stream_cfg.num_gpus / hybrid_groups << ": "
              << formatDouble(hybrid_run.ns_serial / 1e6, 2) << " ms j1, "
              << formatDouble(hybrid_run.ns_parallel / 1e6, 2) << " ms j"
              << jobs_parallel << ", "
              << formatDouble(stream_speedup, 2) << "x speedup, "
              << formatDouble(stream_frames_per_s, 1) << " frames/s, "
              << "micro-stutter "
              << formatDouble(hybrid_run.result.micro_stutter, 1)
              << " cycles\n";

    if (!out_path.empty()) {
        std::ofstream out(out_path);
        chopin_assert(out.good(), "cannot write ", out_path);
        JsonWriter w(out);
        w.beginObject();
        w.field("scale", h.scale());
        w.field("gpus", h.gpus());
        w.field("jobs_parallel", jobs_parallel);
        w.field("repeat", repeat);
        w.field("gmean_speedup", gmean_speedup);
        w.field("timing_speedup", timing_speedup);
        w.field("timing_ns_serial", timing_ns_serial);
        w.field("timing_ns_parallel", timing_ns_parallel);
        w.field("timing_events", timing_events);
        w.field("event_queue_ns_per_event", event_queue_ns);
        w.field("raster_speedup", raster_speedup);
        w.field("raster_ns_per_pixel", raster_ns_per_pixel);
        w.field("raster_ns_per_pixel_scalar", raster_ns_per_pixel_scalar);
        w.field("raster_pixels", oracle_scalar.pixels);
        w.field("raster_backend", simd::kNativeBackend);
        w.field("raster_width",
                static_cast<std::uint64_t>(simd::NativeLanes::width));
        w.field("stream_speedup", stream_speedup);
        w.field("stream_frames",
                static_cast<std::uint64_t>(stream_frames));
        w.field("stream_frames_per_s", stream_frames_per_s);
        w.field("stream_frames_per_mcycle",
                hybrid_run.result.frames_per_mcycle);
        w.field("stream_micro_stutter", hybrid_run.result.micro_stutter);
        w.field("stream_sequence_hash", hybrid_run.result.sequence_hash);
        w.key("results");
        w.beginArray();
        for (const Measurement &m : measurements) {
            w.beginObject();
            w.field("bench", m.bench);
            w.field("scheme", m.scheme);
            w.field("tris", m.tris);
            w.field("ns_frame_serial", m.ns_serial);
            w.field("ns_frame_parallel", m.ns_parallel);
            w.field("mtris_per_s", mtrisPerSecond(m.tris, m.ns_parallel));
            w.field("speedup", m.speedup);
            w.field("frame_hash", m.frame_hash);
            w.field("cycles", m.cycles);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        w.finish();
        std::cout << "wrote " << out_path << "\n";
    }

    if (!stream_out_path.empty()) {
        // Standalone stream dump, same top-level contract as the main one
        // (results / gmean_speedup / jobs_parallel) so bench_json.py loads,
        // reports, gates and --compares it unchanged. One row per stream
        // scheme; frame_hash carries the sequence hash and cycles the
        // stream makespan, so --compare doubles as the cross-run (and
        // cross-build) stream determinism check.
        std::ofstream out(stream_out_path);
        chopin_assert(out.good(), "cannot write ", stream_out_path);
        JsonWriter w(out);
        w.beginObject();
        w.field("scale", h.scale());
        w.field("gpus", h.gpus());
        w.field("jobs_parallel", jobs_parallel);
        w.field("repeat", repeat);
        w.field("gmean_speedup", gmean(stream_speedups));
        w.field("stream_speedup", stream_speedup);
        w.field("stream_frames",
                static_cast<std::uint64_t>(stream_frames));
        w.field("stream_frames_per_s", stream_frames_per_s);
        w.field("stream_frames_per_mcycle",
                hybrid_run.result.frames_per_mcycle);
        w.field("stream_micro_stutter", hybrid_run.result.micro_stutter);
        w.field("stream_sequence_hash", hybrid_run.result.sequence_hash);
        w.key("results");
        w.beginArray();
        for (const StreamMeasurement &m : stream_runs) {
            w.beginObject();
            w.field("bench", "wolf-orbit" + std::to_string(stream_frames));
            w.field("scheme", toString(m.scheme));
            w.field("tris", stream_tris);
            w.field("ns_frame_serial",
                    m.ns_serial / static_cast<double>(stream_frames));
            w.field("ns_frame_parallel",
                    m.ns_parallel / static_cast<double>(stream_frames));
            w.field("mtris_per_s",
                    mtrisPerSecond(stream_tris, m.ns_parallel));
            w.field("speedup", m.speedup);
            w.field("frame_hash", m.result.sequence_hash);
            w.field("cycles", m.result.makespan);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        w.finish();
        std::cout << "wrote " << stream_out_path << "\n";
    }

    SystemConfig trace_cfg;
    trace_cfg.num_gpus = h.gpus();
    h.writeTraceSample(Scheme::ChopinCompSched, trace_cfg);
    return 0;
}

/**
 * @file
 * Fig. 5: potential performance improvement afforded by parallel image
 * composition — GPUpd, IdealGPUpd and IdealCHOPIN (zero-latency,
 * infinite-bandwidth links) normalized to primitive duplication on the
 * default 8-GPU system.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace chopin;
    using namespace chopin::bench;

    Harness h("Fig. 5: idealized speedups over primitive duplication", 1);
    h.parse(argc, argv);

    const Scheme schemes[] = {Scheme::Duplication, Scheme::Gpupd,
                              Scheme::GpupdIdeal, Scheme::ChopinIdeal};
    TextTable table({"benchmark", "Duplication", "GPUpd", "IdealGPUpd",
                     "IdealCHOPIN"});
    std::vector<std::vector<double>> speedups(std::size(schemes));
    for (const std::string &name : h.benchmarks()) {
        SystemConfig cfg;
        cfg.num_gpus = h.gpus();
        const FrameResult &base = h.run(Scheme::Duplication, name, cfg);
        std::vector<std::string> row{name};
        for (std::size_t i = 0; i < std::size(schemes); ++i) {
            const FrameResult &r = h.run(schemes[i], name, cfg);
            double s = speedupOver(base, r);
            speedups[i].push_back(s);
            row.push_back(formatDouble(s, 2) + "x");
        }
        table.addRow(row);
    }
    if (h.benchmarks().size() > 1) {
        std::vector<std::string> row{"GMean"};
        for (auto &col : speedups)
            row.push_back(formatDouble(gmean(col), 2) + "x");
        table.addRow(row);
    }
    h.emit(table);
    return 0;
}

/**
 * @file
 * Fig. 13: the headline result — speedups of GPUpd, IdealGPUpd, CHOPIN,
 * CHOPIN + composition scheduler, and IdealCHOPIN over primitive
 * duplication on the 8-GPU Table II system, per benchmark and gmean.
 * (Paper: CHOPIN+CompSched 1.25x gmean, up to 1.56x.)
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace chopin;
    using namespace chopin::bench;

    Harness h("Fig. 13: 8-GPU speedups over primitive duplication", 1);
    h.parse(argc, argv);

    const Scheme schemes[] = {Scheme::Gpupd, Scheme::GpupdIdeal,
                              Scheme::Chopin, Scheme::ChopinCompSched,
                              Scheme::ChopinIdeal};
    {
        SystemConfig cfg;
        cfg.num_gpus = h.gpus();
        h.prefetch(h.grid({Scheme::Duplication, Scheme::Gpupd,
                           Scheme::GpupdIdeal, Scheme::Chopin,
                           Scheme::ChopinCompSched, Scheme::ChopinIdeal},
                          {cfg}));
    }
    TextTable table({"benchmark", "GPUpd", "IdealGPUpd", "CHOPIN",
                     "CHOPIN+CompSched", "IdealCHOPIN"});
    std::vector<std::vector<double>> speedups(std::size(schemes));
    for (const std::string &name : h.benchmarks()) {
        SystemConfig cfg;
        cfg.num_gpus = h.gpus();
        const FrameResult &base = h.run(Scheme::Duplication, name, cfg);
        std::vector<std::string> row{name};
        for (std::size_t i = 0; i < std::size(schemes); ++i) {
            const FrameResult &r = h.run(schemes[i], name, cfg);
            double s = speedupOver(base, r);
            speedups[i].push_back(s);
            row.push_back(formatDouble(s, 2) + "x");
        }
        table.addRow(row);
    }
    if (h.benchmarks().size() > 1) {
        std::vector<std::string> row{"GMean"};
        for (auto &col : speedups)
            row.push_back(formatDouble(gmean(col), 2) + "x");
        table.addRow(row);
    }
    h.emit(table);
    return 0;
}

/**
 * @file
 * Ablation: composition transfer granularity (DESIGN.md §2.5). Sweeps the
 * three payload models — idealized per-pixel masking, 8x8 DMA-burst
 * sub-tiles (default), and whole touched 64x64 tiles — and reports the
 * resulting composition traffic and CHOPIN+CompSched speedup. The default
 * is the one whose traffic reproduces Fig. 17's published volumes.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace chopin;
    using namespace chopin::bench;

    Harness h("Ablation: composition payload granularity", 1);
    h.parse(argc, argv);

    const CompPayload payloads[] = {CompPayload::WrittenPixels,
                                    CompPayload::SubTiles,
                                    CompPayload::FullTiles};
    TextTable table({"payload", "avg traffic MB", "grid traffic MB",
                     "gmean speedup vs duplication"});
    for (CompPayload payload : payloads) {
        double sum_mb = 0, grid_mb = 0;
        std::vector<double> speedups;
        for (const std::string &name : h.benchmarks()) {
            SystemConfig cfg;
            cfg.num_gpus = h.gpus();
            const FrameResult &base = h.run(Scheme::Duplication, name, cfg);
            cfg.comp_payload = payload;
            const FrameResult &r =
                h.run(Scheme::ChopinCompSched, name, cfg);
            double mb = static_cast<double>(
                            r.traffic.ofClass(TrafficClass::Composition)) /
                        (1024.0 * 1024.0);
            sum_mb += mb;
            if (name == "grid")
                grid_mb = mb;
            speedups.push_back(speedupOver(base, r));
        }
        table.addRow({toString(payload),
                      formatDouble(sum_mb / h.benchmarks().size(), 2),
                      formatDouble(grid_mb, 2),
                      formatDouble(gmean(speedups), 3) + "x"});
    }
    h.emit(table);
    std::cout << "(paper Fig. 17: 51.66 MB average, 131.92 MB for grid)\n";
    return 0;
}

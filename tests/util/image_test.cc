#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/image.hh"

namespace chopin
{
namespace
{

TEST(Image, ConstructionAndFill)
{
    Image img(4, 3, {1, 0, 0, 1});
    EXPECT_EQ(img.width(), 4);
    EXPECT_EQ(img.height(), 3);
    EXPECT_EQ(img.at(3, 2), (Color{1, 0, 0, 1}));
    img.clear({0, 1, 0, 1});
    EXPECT_EQ(img.at(0, 0), (Color{0, 1, 0, 1}));
}

TEST(Image, CompareIdentical)
{
    Image a(8, 8, {0.5f, 0.5f, 0.5f, 1});
    ImageDiff d = compareImages(a, a);
    EXPECT_EQ(d.differing_pixels, 0);
    EXPECT_FLOAT_EQ(d.max_abs_diff, 0.0f);
}

TEST(Image, CompareFindsFirstDifference)
{
    Image a(8, 8), b(8, 8);
    b.at(5, 2) = {0.2f, 0, 0, 0};
    b.at(6, 7) = {0.1f, 0, 0, 0};
    ImageDiff d = compareImages(a, b);
    EXPECT_EQ(d.differing_pixels, 2);
    EXPECT_EQ(d.first_x, 5);
    EXPECT_EQ(d.first_y, 2);
    EXPECT_NEAR(d.max_abs_diff, 0.2f, 1e-6f);
}

TEST(Image, CompareHonorsTolerance)
{
    Image a(4, 4), b(4, 4);
    b.at(1, 1) = {0.05f, 0, 0, 0};
    EXPECT_EQ(compareImages(a, b, 0.1f).differing_pixels, 0);
    EXPECT_EQ(compareImages(a, b, 0.01f).differing_pixels, 1);
}

TEST(Image, CompareSizeMismatch)
{
    Image a(4, 4), b(5, 4);
    EXPECT_EQ(compareImages(a, b).differing_pixels, -1);
}

TEST(Image, PpmWriteProducesValidHeaderAndSize)
{
    Image img(10, 5, {1, 1, 1, 1});
    std::string path = ::testing::TempDir() + "/chopin_test.ppm";
    ASSERT_TRUE(img.writePpm(path));
    std::ifstream in(path, std::ios::binary);
    std::string magic;
    int w, h, maxval;
    in >> magic >> w >> h >> maxval;
    EXPECT_EQ(magic, "P6");
    EXPECT_EQ(w, 10);
    EXPECT_EQ(h, 5);
    EXPECT_EQ(maxval, 255);
    in.get(); // single whitespace after header
    std::vector<char> payload(static_cast<std::size_t>(w) * h * 3);
    in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
    EXPECT_EQ(in.gcount(), static_cast<std::streamsize>(payload.size()));
    std::remove(path.c_str());
}

TEST(Image, PpmWriteFailsOnBadPath)
{
    Image img(2, 2);
    EXPECT_FALSE(img.writePpm("/nonexistent-dir/x.ppm"));
}

} // namespace
} // namespace chopin

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hh"

namespace chopin
{
namespace
{

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, StreamsAreIndependent)
{
    Rng a(7, 1), b(7, 2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

class RngBoundsTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(RngBoundsTest, BoundedStaysInRange)
{
    std::uint32_t bound = GetParam();
    Rng rng(99 + bound);
    for (int i = 0; i < 2000; ++i)
        ASSERT_LT(rng.nextBounded(bound), bound);
}

TEST_P(RngBoundsTest, BoundedCoversRange)
{
    std::uint32_t bound = GetParam();
    if (bound > 64)
        return; // coverage check only makes sense for small bounds
    Rng rng(7 + bound);
    std::vector<bool> seen(bound, false);
    for (int i = 0; i < 5000; ++i)
        seen[rng.nextBounded(bound)] = true;
    for (std::uint32_t v = 0; v < bound; ++v)
        EXPECT_TRUE(seen[v]) << "value " << v << " never produced";
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundsTest,
                         ::testing::Values(1u, 2u, 3u, 7u, 10u, 64u, 1000u,
                                           1u << 20));

TEST(Rng, FloatInUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        float f = rng.nextFloat();
        ASSERT_GE(f, 0.0f);
        ASSERT_LT(f, 1.0f);
    }
}

TEST(Rng, FloatRangeRespected)
{
    Rng rng(6);
    for (int i = 0; i < 1000; ++i) {
        float f = rng.nextFloat(-2.0f, 3.0f);
        ASSERT_GE(f, -2.0f);
        ASSERT_LT(f, 3.0f);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(8);
    bool lo = false, hi = false;
    for (int i = 0; i < 5000; ++i) {
        std::uint32_t v = rng.nextRange(3, 5);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 5u);
        lo |= v == 3;
        hi |= v == 5;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, NormalMomentsRoughlyStandard)
{
    Rng rng(123);
    double sum = 0, sum2 = 0;
    int n = 20000;
    for (int i = 0; i < n; ++i) {
        double v = rng.nextNormal();
        sum += v;
        sum2 += v * v;
    }
    double mean = sum / n;
    double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.05);
    EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(Rng, LogNormalIsPositiveAndHeavyTailed)
{
    Rng rng(321);
    double max_v = 0, sum = 0;
    int n = 20000;
    for (int i = 0; i < n; ++i) {
        double v = rng.nextLogNormal(0.0, 1.1);
        ASSERT_GT(v, 0.0);
        max_v = std::max(max_v, v);
        sum += v;
    }
    // Heavy tail: the max dwarfs the mean.
    EXPECT_GT(max_v, 10.0 * (sum / n));
}

TEST(Rng, ExponentialMean)
{
    Rng rng(55);
    double sum = 0;
    int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextExponential(4.0);
    EXPECT_NEAR(sum / n, 4.0, 0.25);
}

TEST(Rng, BernoulliProbability)
{
    Rng rng(77);
    int hits = 0, n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

} // namespace
} // namespace chopin

#include <gtest/gtest.h>

#include <vector>

#include "util/cli.hh"

namespace chopin
{
namespace
{

/** Build argv from string literals. */
class Argv
{
  public:
    explicit Argv(std::vector<std::string> args) : strings(std::move(args))
    {
        for (std::string &s : strings)
            ptrs.push_back(s.data());
    }
    int argc() { return static_cast<int>(ptrs.size()); }
    char **argv() { return ptrs.data(); }

  private:
    std::vector<std::string> strings;
    std::vector<char *> ptrs;
};

CommandLine
makeCli()
{
    CommandLine cli("test tool");
    cli.addFlag("count", "3", "a number");
    cli.addFlag("name", "abc", "a string");
    cli.addFlag("ratio", "0.5", "a double");
    cli.addFlag("verbose", "false", "a bool");
    return cli;
}

TEST(CommandLine, DefaultsApply)
{
    CommandLine cli = makeCli();
    Argv a({"prog"});
    cli.parse(a.argc(), a.argv());
    EXPECT_EQ(cli.getInt("count"), 3);
    EXPECT_EQ(cli.getString("name"), "abc");
    EXPECT_DOUBLE_EQ(cli.getDouble("ratio"), 0.5);
    EXPECT_FALSE(cli.getBool("verbose"));
}

TEST(CommandLine, EqualsForm)
{
    CommandLine cli = makeCli();
    Argv a({"prog", "--count=7", "--name=xyz", "--ratio=1.25",
            "--verbose=true"});
    cli.parse(a.argc(), a.argv());
    EXPECT_EQ(cli.getInt("count"), 7);
    EXPECT_EQ(cli.getString("name"), "xyz");
    EXPECT_DOUBLE_EQ(cli.getDouble("ratio"), 1.25);
    EXPECT_TRUE(cli.getBool("verbose"));
}

TEST(CommandLine, SpaceForm)
{
    CommandLine cli = makeCli();
    Argv a({"prog", "--count", "11", "--name", "hello"});
    cli.parse(a.argc(), a.argv());
    EXPECT_EQ(cli.getInt("count"), 11);
    EXPECT_EQ(cli.getString("name"), "hello");
}

TEST(CommandLine, BareBooleanSwitch)
{
    CommandLine cli = makeCli();
    Argv a({"prog", "--verbose"});
    cli.parse(a.argc(), a.argv());
    EXPECT_TRUE(cli.getBool("verbose"));
}

TEST(CommandLine, PositionalArgsCollected)
{
    CommandLine cli = makeCli();
    Argv a({"prog", "one", "--count=2", "two"});
    cli.parse(a.argc(), a.argv());
    ASSERT_EQ(cli.positional().size(), 2u);
    EXPECT_EQ(cli.positional()[0], "one");
    EXPECT_EQ(cli.positional()[1], "two");
}

TEST(CommandLineDeath, UnknownFlagIsFatal)
{
    EXPECT_EXIT(
        {
            CommandLine cli = makeCli();
            Argv a({"prog", "--bogus=1"});
            cli.parse(a.argc(), a.argv());
        },
        ::testing::ExitedWithCode(1), "unknown flag");
}

TEST(CommandLineDeath, NonNumericIntIsFatal)
{
    EXPECT_EXIT(
        {
            CommandLine cli = makeCli();
            Argv a({"prog", "--count=abc"});
            cli.parse(a.argc(), a.argv());
            cli.getInt("count");
        },
        ::testing::ExitedWithCode(1), "expects an integer");
}

} // namespace
} // namespace chopin

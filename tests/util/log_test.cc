#include <gtest/gtest.h>

#include "util/log.hh"

namespace chopin
{
namespace
{

TEST(Log, LevelRoundTrips)
{
    LogLevel before = logLevel();
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(LogLevel::Verbose);
    EXPECT_EQ(logLevel(), LogLevel::Verbose);
    setLogLevel(before);
}

TEST(Log, InformSuppressedWhenQuiet)
{
    LogLevel before = logLevel();
    setLogLevel(LogLevel::Quiet);
    ::testing::internal::CaptureStderr();
    inform("should not appear");
    EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
    setLogLevel(before);
}

TEST(Log, InformAndWarnFormatArguments)
{
    LogLevel before = logLevel();
    setLogLevel(LogLevel::Normal);
    ::testing::internal::CaptureStderr();
    inform("value is ", 42, " (", 1.5, ")");
    warn("watch out for ", "x");
    std::string out = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("info: value is 42 (1.5)"), std::string::npos);
    EXPECT_NE(out.find("warn: watch out for x"), std::string::npos);
    setLogLevel(before);
}

TEST(LogDeath, FatalExitsCleanly)
{
    EXPECT_EXIT(fatal("bad config ", 7), ::testing::ExitedWithCode(1),
                "fatal: bad config 7");
}

TEST(LogDeath, PanicAborts)
{
    EXPECT_DEATH(panic("invariant ", "broken"), "panic: invariant broken");
}

TEST(LogDeath, AssertMacroFiresWithMessage)
{
    EXPECT_DEATH(chopin_assert(1 == 2, "math is off by ", 1),
                 "CHECK failed: 1 == 2: math is off by 1");
}

} // namespace
} // namespace chopin

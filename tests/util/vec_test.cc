#include <gtest/gtest.h>

#include <cmath>

#include "util/vec.hh"

namespace chopin
{
namespace
{

constexpr float eps = 1e-5f;

void
expectVec4Near(const Vec4 &a, const Vec4 &b)
{
    EXPECT_NEAR(a.x, b.x, eps);
    EXPECT_NEAR(a.y, b.y, eps);
    EXPECT_NEAR(a.z, b.z, eps);
    EXPECT_NEAR(a.w, b.w, eps);
}

TEST(Vec, DotAndCross)
{
    Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
    EXPECT_FLOAT_EQ(dot(x, y), 0.0f);
    EXPECT_FLOAT_EQ(dot(x, x), 1.0f);
    Vec3 c = cross(x, y);
    EXPECT_FLOAT_EQ(c.x, z.x);
    EXPECT_FLOAT_EQ(c.y, z.y);
    EXPECT_FLOAT_EQ(c.z, z.z);
}

TEST(Vec, NormalizeLength)
{
    Vec3 v{3, 4, 0};
    EXPECT_FLOAT_EQ(length(v), 5.0f);
    Vec3 n = normalize(v);
    EXPECT_NEAR(length(n), 1.0f, eps);
    // Zero vector normalizes to itself (no NaN).
    Vec3 zero;
    Vec3 nz = normalize(zero);
    EXPECT_FLOAT_EQ(nz.x, 0.0f);
}

TEST(Mat4, IdentityIsNeutral)
{
    Vec4 v{1.5f, -2.0f, 3.0f, 1.0f};
    expectVec4Near(transform(Mat4::identity(), v), v);
}

TEST(Mat4, TranslateMovesPoints)
{
    Mat4 t = Mat4::translate(1, 2, 3);
    expectVec4Near(transform(t, {0, 0, 0, 1}), {1, 2, 3, 1});
    // Directions (w = 0) are unaffected by translation.
    expectVec4Near(transform(t, {1, 0, 0, 0}), {1, 0, 0, 0});
}

TEST(Mat4, ScaleScales)
{
    Mat4 s = Mat4::scale(2, 3, 4);
    expectVec4Near(transform(s, {1, 1, 1, 1}), {2, 3, 4, 1});
}

TEST(Mat4, RotateYQuarterTurn)
{
    Mat4 r = Mat4::rotateY(static_cast<float>(M_PI / 2));
    // +x rotates to -z (right-handed).
    Vec4 out = transform(r, {1, 0, 0, 1});
    EXPECT_NEAR(out.x, 0.0f, eps);
    EXPECT_NEAR(out.z, -1.0f, eps);
}

TEST(Mat4, RotateXQuarterTurn)
{
    Mat4 r = Mat4::rotateX(static_cast<float>(M_PI / 2));
    Vec4 out = transform(r, {0, 1, 0, 1});
    EXPECT_NEAR(out.y, 0.0f, eps);
    EXPECT_NEAR(out.z, 1.0f, eps);
}

TEST(Mat4, CompositionMatchesSequentialTransforms)
{
    Mat4 a = Mat4::translate(1, 0, 0);
    Mat4 b = Mat4::scale(2, 2, 2);
    Vec4 v{1, 2, 3, 1};
    Vec4 seq = transform(a, transform(b, v));
    Vec4 combined = transform(a * b, v);
    expectVec4Near(seq, combined);
}

TEST(Mat4, PerspectiveMapsNearAndFarPlanes)
{
    float n = 0.1f, f = 100.0f;
    Mat4 p = Mat4::perspective(static_cast<float>(M_PI / 2), 1.0f, n, f);
    Vec4 near_pt = transform(p, {0, 0, -n, 1});
    Vec4 far_pt = transform(p, {0, 0, -f, 1});
    EXPECT_NEAR(near_pt.z / near_pt.w, -1.0f, 1e-4f);
    EXPECT_NEAR(far_pt.z / far_pt.w, 1.0f, 1e-4f);
}

TEST(Mat4, OrthoMapsCorners)
{
    Mat4 o = Mat4::ortho(-2, 2, -1, 1, 0, 10);
    Vec4 c = transform(o, {2, 1, 0, 1});
    EXPECT_NEAR(c.x, 1.0f, eps);
    EXPECT_NEAR(c.y, 1.0f, eps);
}

} // namespace
} // namespace chopin

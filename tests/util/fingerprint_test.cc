/**
 * @file
 * Fingerprinter: the FNV-1a mixer the cache keys are built from. The
 * properties under test are the ones the sweep engine's correctness rides
 * on: determinism, order sensitivity, and separation — two different value
 * sequences must not collapse onto one key via type or boundary aliasing.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/fingerprint.hh"

namespace chopin
{
namespace
{

TEST(Fingerprint, DeterministicAcrossInstances)
{
    Fingerprinter a, b;
    a.str("hello");
    a.u64(42);
    a.f64(2.5);
    b.str("hello");
    b.u64(42);
    b.f64(2.5);
    EXPECT_EQ(a.value(), b.value());
}

TEST(Fingerprint, OrderSensitive)
{
    Fingerprinter a, b;
    a.u64(1);
    a.u64(2);
    b.u64(2);
    b.u64(1);
    EXPECT_NE(a.value(), b.value());
}

TEST(Fingerprint, TypeTagsSeparateEqualBitPatterns)
{
    // Same 64-bit payload through different typed channels must not alias.
    Fingerprinter u, i, f;
    u.u64(1);
    i.i64(1);
    f.f64(0.0); // different payload bits but exercises the tag too
    EXPECT_NE(u.value(), i.value());
    EXPECT_NE(u.value(), f.value());

    Fingerprinter b0, b1;
    b0.boolean(false);
    b1.u64(0);
    EXPECT_NE(b0.value(), b1.value());
}

TEST(Fingerprint, LengthPrefixPreventsConcatenationAliasing)
{
    // "ab" + "c" vs "a" + "bc": same byte stream, different field split.
    Fingerprinter a, b;
    a.str("ab");
    a.str("c");
    b.str("a");
    b.str("bc");
    EXPECT_NE(a.value(), b.value());
}

TEST(Fingerprint, FloatValuesAreBitExact)
{
    Fingerprinter a, b;
    a.f64(0.1);
    b.f64(0.1);
    EXPECT_EQ(a.value(), b.value());

    // One ulp apart must fingerprint differently — the key is bit-exact.
    Fingerprinter c, d;
    c.f64(1.0);
    d.f64(std::nextafter(1.0, 2.0));
    EXPECT_NE(c.value(), d.value());

    // Signed zeros are different bit patterns, hence different keys.
    Fingerprinter pz, nz;
    pz.f64(0.0);
    nz.f64(-0.0);
    EXPECT_NE(pz.value(), nz.value());
}

TEST(Fingerprint, HexIsSixteenLowercaseDigits)
{
    Fingerprinter fp;
    fp.str("x");
    std::string hex = fp.hex();
    ASSERT_EQ(hex.size(), 16u);
    for (char c : hex)
        EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
            << hex;
    // Leading zeros are preserved (fixed-width key filenames rely on it).
    Fingerprinter zero_ish;
    EXPECT_EQ(zero_ish.hex().size(), 16u);
}

TEST(Fingerprint, BytesMatchesEquivalentByteStream)
{
    const unsigned char raw[] = {1, 2, 3, 4};
    Fingerprinter a, b;
    a.bytes(raw, sizeof(raw));
    b.bytes(raw, sizeof(raw));
    EXPECT_EQ(a.value(), b.value());

    Fingerprinter c;
    const unsigned char other[] = {1, 2, 3, 5};
    c.bytes(other, sizeof(other));
    EXPECT_NE(a.value(), c.value());
}

} // namespace
} // namespace chopin

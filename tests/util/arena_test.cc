#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "util/arena.hh"

namespace chopin
{
namespace
{

TEST(Arena, RespectsAlignment)
{
    Arena arena(256);
    // Interleave odd sizes with increasing alignments: each pointer must
    // land on its own boundary regardless of what preceded it.
    for (std::size_t align : {1u, 2u, 4u, 8u, 16u}) {
        void *p = arena.allocate(3, 1);
        ASSERT_NE(p, nullptr);
        void *q = arena.allocate(24, align);
        ASSERT_NE(q, nullptr);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % align, 0u)
            << "align " << align;
    }
}

TEST(Arena, ResetReusesTheSameBlock)
{
    Arena arena(1024);
    void *first = arena.allocate(100, 8);
    arena.reset();
    void *again = arena.allocate(100, 8);
    // Same block, same offset: steady state performs no heap traffic.
    EXPECT_EQ(first, again);
    EXPECT_EQ(arena.blockCount(), 1u);
}

TEST(Arena, LargeAllocationGetsDedicatedBlock)
{
    Arena arena(128);
    void *big = arena.allocate(1 << 16, 8);
    ASSERT_NE(big, nullptr);
    EXPECT_EQ(arena.blockCount(), 2u);
    // The range is fully usable.
    std::memset(big, 0xAB, 1 << 16);
}

TEST(Arena, ResetCoalescesChainsIntoOneBlock)
{
    Arena arena(64);
    for (int i = 0; i < 10; ++i)
        arena.allocate(64, 8); // forces repeated growth
    ASSERT_GT(arena.blockCount(), 1u);
    std::size_t cap_before = arena.capacity();
    arena.reset();
    EXPECT_EQ(arena.blockCount(), 1u);
    EXPECT_EQ(arena.capacity(), cap_before);
    EXPECT_EQ(arena.bytesAllocated(), 0u);
    // The workload that forced the chain now fits without growing.
    for (int i = 0; i < 10; ++i)
        arena.allocate(64, 8);
    EXPECT_EQ(arena.blockCount(), 1u);
}

TEST(Arena, TracksBytesAllocated)
{
    Arena arena;
    EXPECT_EQ(arena.bytesAllocated(), 0u);
    arena.allocate(100, 8);
    arena.allocate(28, 4);
    EXPECT_EQ(arena.bytesAllocated(), 128u);
}

TEST(ArenaVector, PushBackGrowthPreservesValues)
{
    Arena arena(128); // small: growth relocates across blocks
    ArenaVector<std::uint32_t> v;
    v.attach(arena);
    EXPECT_TRUE(v.empty());
    for (std::uint32_t i = 0; i < 1000; ++i)
        v.push_back(i * 3u);
    ASSERT_EQ(v.size(), 1000u);
    for (std::uint32_t i = 0; i < 1000; ++i)
        ASSERT_EQ(v[i], i * 3u);
}

TEST(ArenaVector, AssignAndIteration)
{
    Arena arena;
    ArenaVector<int> v;
    v.attach(arena);
    v.assign(17, 42);
    ASSERT_EQ(v.size(), 17u);
    int sum = 0;
    for (int x : v)
        sum += x;
    EXPECT_EQ(sum, 17 * 42);
    v.assign(3, 7); // shrinking assign
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v.back(), 7);
}

TEST(ArenaVector, SlabProtocol)
{
    Arena arena;
    ArenaVector<std::uint64_t> v;
    v.attach(arena);
    // The runGeometry pattern: oversize, fill disjoint ranges through
    // data(), then shrink to the defined prefix.
    v.resizeUninitialized(64);
    std::uint64_t *slab = v.data();
    for (int i = 0; i < 10; ++i)
        slab[i] = static_cast<std::uint64_t>(i) + 1;
    v.shrinkTo(10);
    ASSERT_EQ(v.size(), 10u);
    EXPECT_EQ(v[9], 10u);
}

TEST(ArenaVector, ReattachAfterResetStartsFresh)
{
    Arena arena;
    ArenaVector<int> v;
    v.attach(arena);
    v.push_back(1);
    arena.reset();
    v.attach(arena);
    EXPECT_TRUE(v.empty());
    v.push_back(2);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], 2);
}

} // namespace
} // namespace chopin

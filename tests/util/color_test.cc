#include <gtest/gtest.h>

#include "util/color.hh"

namespace chopin
{
namespace
{

TEST(Color, PackUnpackRoundTripsQuantized)
{
    Color c{0.25f, 0.5f, 0.75f, 1.0f};
    Color back = unpackRgba8(packRgba8(c));
    EXPECT_NEAR(back.r, c.r, 1.0f / 255.0f);
    EXPECT_NEAR(back.g, c.g, 1.0f / 255.0f);
    EXPECT_NEAR(back.b, c.b, 1.0f / 255.0f);
    EXPECT_NEAR(back.a, c.a, 1.0f / 255.0f);
}

TEST(Color, PackClampsOutOfRange)
{
    EXPECT_EQ(packRgba8({2.0f, -1.0f, 0.0f, 1.0f}), 0xff0000ffu);
}

TEST(Color, PackExtremes)
{
    EXPECT_EQ(packRgba8({0, 0, 0, 0}), 0u);
    EXPECT_EQ(packRgba8({1, 1, 1, 1}), 0xffffffffu);
}

TEST(Color, Clamp01)
{
    Color c = clamp01({-0.5f, 0.5f, 1.5f, 1.0f});
    EXPECT_FLOAT_EQ(c.r, 0.0f);
    EXPECT_FLOAT_EQ(c.g, 0.5f);
    EXPECT_FLOAT_EQ(c.b, 1.0f);
}

TEST(Color, Arithmetic)
{
    Color a{0.1f, 0.2f, 0.3f, 0.4f};
    Color b{0.4f, 0.3f, 0.2f, 0.1f};
    Color sum = a + b;
    EXPECT_FLOAT_EQ(sum.r, 0.5f);
    EXPECT_FLOAT_EQ(sum.a, 0.5f);
    Color diff = a - b;
    EXPECT_NEAR(diff.r, -0.3f, 1e-6f);
    Color scaled = a * 2.0f;
    EXPECT_FLOAT_EQ(scaled.g, 0.4f);
    Color prod = a * b;
    EXPECT_NEAR(prod.b, 0.06f, 1e-6f);
}

TEST(Color, MaxAbsDiff)
{
    Color a{0.0f, 0.5f, 1.0f, 0.25f};
    Color b{0.1f, 0.5f, 0.7f, 0.25f};
    EXPECT_NEAR(maxAbsDiff(a, b), 0.3f, 1e-6f);
    EXPECT_FLOAT_EQ(maxAbsDiff(a, a), 0.0f);
}

} // namespace
} // namespace chopin

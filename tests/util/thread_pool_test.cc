/**
 * @file
 * ThreadPool: deterministic slot-writing parallelism. The contract under
 * test is the one the rendering engine relies on: results written into
 * pre-sized slots are identical at any job count, nested parallelFor runs
 * inline, and exceptions propagate to the caller.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hh"

namespace chopin
{
namespace
{

TEST(ThreadPool, SerialPoolRunsInlineInOrder)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.jobs(), 1u);

    std::vector<std::size_t> order;
    pool.parallelFor(16, [&](std::size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 16u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, SlotResultsMatchSerialAtAnyJobCount)
{
    std::vector<std::uint64_t> expect(1000);
    for (std::size_t i = 0; i < expect.size(); ++i)
        expect[i] = i * i + 7;

    for (unsigned jobs : {1u, 2u, 3u, 8u}) {
        ThreadPool pool(jobs);
        std::vector<std::uint64_t> got(expect.size(), 0);
        pool.parallelFor(got.size(),
                         [&](std::size_t i) { got[i] = i * i + 7; });
        EXPECT_EQ(got, expect) << "jobs=" << jobs;
    }
}

TEST(ThreadPool, RangeVariantCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> visits(257);
    pool.parallelFor(visits.size(), 10,
                     [&](std::size_t begin, std::size_t end) {
                         ASSERT_LE(begin, end);
                         for (std::size_t i = begin; i < end; ++i)
                             visits[i].fetch_add(1);
                     });
    for (std::size_t i = 0; i < visits.size(); ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, EmptyAndSingleElementRangesWork)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock)
{
    ThreadPool pool(4);
    std::vector<std::uint64_t> sums(32, 0);
    pool.parallelFor(sums.size(), [&](std::size_t i) {
        // The nested loop must execute inline on this worker (serially);
        // a re-entrant dispatch would deadlock or oversubscribe.
        std::vector<std::uint64_t> inner(100);
        pool.parallelFor(inner.size(),
                         [&](std::size_t j) { inner[j] = j + i; });
        sums[i] = std::accumulate(inner.begin(), inner.end(),
                                  std::uint64_t{0});
    });
    for (std::size_t i = 0; i < sums.size(); ++i)
        EXPECT_EQ(sums[i], 4950 + 100 * i);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(100,
                                  [&](std::size_t i) {
                                      if (i == 37)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);

    // The pool must remain usable after a throwing job.
    std::vector<int> got(64, 0);
    pool.parallelFor(got.size(),
                     [&](std::size_t i) { got[i] = static_cast<int>(i); });
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], static_cast<int>(i));
}

TEST(ThreadPool, GlobalPoolResizes)
{
    setGlobalJobs(3);
    EXPECT_EQ(globalJobs(), 3u);
    EXPECT_EQ(globalPool().jobs(), 3u);

    setGlobalJobs(1);
    EXPECT_EQ(globalJobs(), 1u);

    // 0 selects the environment/hardware default.
    setGlobalJobs(0);
    EXPECT_EQ(globalJobs(), defaultJobs());
    EXPECT_GE(defaultJobs(), 1u);

    setGlobalJobs(1); // leave a deterministic state for other tests
}

} // namespace
} // namespace chopin

#include <gtest/gtest.h>

#include "sfr/grouping.hh"
#include "sfr/schemes.hh"
#include "trace/generator.hh"

namespace chopin
{
namespace
{

const FrameTrace &
testTrace()
{
    static FrameTrace trace = generateBenchmark("mirror", 16);
    return trace;
}

TEST(Chopin, ThresholdControlsDistributedTriangleCoverage)
{
    SystemConfig cfg;
    cfg.num_gpus = 8;
    std::uint64_t prev_tris = ~0ull;
    for (std::uint64_t threshold : {64ull, 1024ull, 16384ull}) {
        cfg.group_threshold = threshold;
        FrameResult r = runChopin(cfg, testTrace(),
                                  {DrawPolicy::FewestRemaining, true, false});
        EXPECT_LE(r.tris_distributed, prev_tris) << threshold;
        prev_tris = r.tris_distributed;
    }
}

TEST(Chopin, GroupSizesAreBimodal)
{
    // The Fig. 22 insight: most triangles live in a few big groups, so a
    // wide range of thresholds separates object groups from state-change
    // groups.
    auto groups = formGroups(testTrace());
    std::uint64_t total = testTrace().totalTriangles();
    std::uint64_t in_big_groups = 0;
    std::uint64_t big_groups = 0;
    for (const CompositionGroup &g : groups) {
        if (g.triangles >= 256) {
            in_big_groups += g.triangles;
            big_groups += 1;
        }
    }
    EXPECT_LT(big_groups, groups.size()); // some small groups exist
    EXPECT_GT(static_cast<double>(in_big_groups),
              0.80 * static_cast<double>(total));
}

TEST(Chopin, CompositionTrafficScalesDownWithThreshold)
{
    SystemConfig cfg;
    cfg.num_gpus = 8;
    cfg.group_threshold = 64;
    FrameResult lo = runChopin(cfg, testTrace(),
                               {DrawPolicy::FewestRemaining, true, false});
    cfg.group_threshold = ~0ull;
    FrameResult hi = runChopin(cfg, testTrace(),
                               {DrawPolicy::FewestRemaining, true, false});
    EXPECT_GT(lo.traffic.ofClass(TrafficClass::Composition),
              hi.traffic.ofClass(TrafficClass::Composition));
    EXPECT_EQ(hi.traffic.ofClass(TrafficClass::Composition), 0u);
}

TEST(Chopin, SchedulerTrafficIsTiny)
{
    // Section VI-D: with per-triangle updates the scheduler moves ~4B per
    // triangle (the paper's 1.7MB average); at 1024-triangle granularity
    // the traffic becomes negligible next to composition payloads.
    SystemConfig cfg;
    cfg.num_gpus = 8;
    FrameResult fine = runChopin(cfg, testTrace(),
                                 {DrawPolicy::FewestRemaining, true, false});
    EXPECT_GT(fine.sched_status_bytes, 0u);
    // Bounded by 4B per triangle per GPU (duplicated groups report from
    // every GPU) plus per-draw messages.
    EXPECT_LT(fine.sched_status_bytes,
              4 * (cfg.num_gpus + 1) * testTrace().totalTriangles());

    cfg.sched_update_tris = 1024;
    FrameResult coarse = runChopin(
        cfg, testTrace(), {DrawPolicy::FewestRemaining, true, false});
    EXPECT_LT(coarse.sched_status_bytes,
              coarse.traffic.ofClass(TrafficClass::Composition) / 10);
}

TEST(Chopin, LargerUpdateIntervalReducesSchedulerTraffic)
{
    SystemConfig cfg;
    cfg.num_gpus = 8;
    cfg.sched_update_tris = 1;
    FrameResult fine = runChopin(cfg, testTrace(),
                                 {DrawPolicy::FewestRemaining, true, false});
    cfg.sched_update_tris = 1024;
    FrameResult coarse = runChopin(
        cfg, testTrace(), {DrawPolicy::FewestRemaining, true, false});
    EXPECT_LT(coarse.sched_status_bytes, fine.sched_status_bytes);
}

TEST(Chopin, IdealLinksMoveTheSameBytes)
{
    // Idealization changes timing only, not what is communicated.
    SystemConfig cfg;
    cfg.num_gpus = 8;
    FrameResult real = runChopin(cfg, testTrace(),
                                 {DrawPolicy::FewestRemaining, true, false});
    FrameResult ideal = runChopin(cfg, testTrace(),
                                  {DrawPolicy::FewestRemaining, true, true});
    EXPECT_EQ(real.traffic.ofClass(TrafficClass::Composition),
              ideal.traffic.ofClass(TrafficClass::Composition));
}

TEST(Chopin, MoreGpusMeansMoreExtraFragments)
{
    // Fig. 15's trend: 3% / 5.4% / 7.1% extra at 2 / 4 / 8 GPUs — the more
    // GPUs, the less cross-GPU occlusion each sub-image sees.
    std::uint64_t prev = 0;
    for (unsigned gpus : {2u, 4u, 8u}) {
        SystemConfig cfg;
        cfg.num_gpus = gpus;
        FrameResult r = runChopin(cfg, testTrace(),
                                  {DrawPolicy::FewestRemaining, true, false});
        std::uint64_t pass =
            r.totals.frags_early_pass + r.totals.frags_late_pass;
        EXPECT_GE(pass, prev) << gpus;
        prev = pass;
    }
}

TEST(Chopin, SingleGpuChopinMatchesSingleGpuCycles)
{
    // With one GPU there is no communication, but CHOPIN still renders
    // distributed groups into a sub-image and merges it into the frame
    // (the ROP read/merge work) — so it trails the plain pipeline by that
    // merge cost and nothing more.
    SystemConfig cfg;
    cfg.num_gpus = 1;
    FrameResult single = runSingleGpu(cfg, testTrace());
    FrameResult chopin = runChopin(cfg, testTrace(),
                                   {DrawPolicy::FewestRemaining, true, false});
    EXPECT_EQ(chopin.traffic.total, 0u);
    EXPECT_GE(chopin.cycles, single.cycles);
    EXPECT_LT(static_cast<double>(chopin.cycles),
              1.30 * static_cast<double>(single.cycles));
}

TEST(Chopin, BreakdownBucketsArePopulated)
{
    SystemConfig cfg;
    cfg.num_gpus = 8;
    FrameResult r = runChopin(cfg, testTrace(),
                              {DrawPolicy::FewestRemaining, true, false});
    EXPECT_GT(r.breakdown.composition, 0u);
    EXPECT_GT(r.breakdown.normal_pipeline, 0u);
    EXPECT_EQ(r.breakdown.prim_distribution, 0u); // GPUpd-only bucket
    EXPECT_EQ(r.breakdown.prim_projection, 0u);
}

} // namespace
} // namespace chopin

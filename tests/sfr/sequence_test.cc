#include <gtest/gtest.h>

#include "sfr/sequence.hh"
#include "stats/metrics.hh"
#include "stats/tracer.hh"
#include "trace/generator.hh"
#include "util/thread_pool.hh"

namespace chopin
{
namespace
{

SequenceTrace
testSequence(std::uint32_t frames = 8)
{
    SequenceParams p;
    p.num_frames = frames;
    p.path = CameraPath::Orbit;
    return generateBenchmarkSequence("wolf", 32, p);
}

SequenceOptions
options(SequenceScheme scheme, unsigned groups = 2)
{
    SequenceOptions opt;
    opt.scheme = scheme;
    opt.intra_scheme = Scheme::ChopinCompSched;
    opt.afr_groups = groups;
    return opt;
}

/** Full bit-equality over the stream accounting and every frame. */
void
expectIdentical(const SequenceResult &a, const SequenceResult &b)
{
    EXPECT_TRUE(metricsEqual<SequenceAccounting>(a, b));
    EXPECT_EQ(a.frame_start, b.frame_start);
    EXPECT_EQ(a.frame_complete, b.frame_complete);
    ASSERT_EQ(a.frames.size(), b.frames.size());
    for (std::size_t i = 0; i < a.frames.size(); ++i)
        EXPECT_TRUE(metricsEqual<FrameAccounting>(a.frames[i],
                                                  b.frames[i]))
            << "frame " << i << " diverged";
}

TEST(Sequence, HybridRunsEightFramesEndToEnd)
{
    SequenceTrace seq = testSequence(8);
    SystemConfig cfg;
    cfg.num_gpus = 8;
    SequenceResult r =
        runSequence(options(SequenceScheme::HybridAfrSfr, 2), cfg, seq);

    EXPECT_EQ(r.num_frames, 8u);
    EXPECT_EQ(r.afr_groups, 2u);
    EXPECT_EQ(r.gpus_per_group, 4u);
    ASSERT_EQ(r.frames.size(), 8u);
    ASSERT_EQ(r.frame_complete.size(), 8u);
    EXPECT_GT(r.makespan, 0u);
    EXPECT_GT(r.avg_latency, 0.0);
    EXPECT_GT(r.frames_per_mcycle, 0.0);
    EXPECT_GE(r.worst_frame_interval, 0u);
    EXPECT_GE(r.micro_stutter, 0.0);
    EXPECT_NE(r.sequence_hash, 0u);
    for (const FrameResult &f : r.frames) {
        EXPECT_EQ(f.num_gpus, 4u);
        EXPECT_GT(f.cycles, 0u);
        EXPECT_NE(f.frame_hash, 0u);
    }
    // Frames alternate across the two groups: frame 2 follows frame 0 on
    // group 0, frame 3 follows frame 1 on group 1.
    EXPECT_GT(r.frame_complete[2], r.frame_complete[0]);
    EXPECT_GT(r.frame_complete[3], r.frame_complete[1]);
}

TEST(Sequence, StreamTradeoffAcrossSchemes)
{
    // The paper's Section VI-H trade-off on an 8-frame stream: pure SFR
    // has the best single-frame latency, pure AFR the worst; AFR-style
    // pipelining buys throughput (smaller average completion interval).
    SequenceTrace seq = testSequence(8);
    SystemConfig cfg;
    cfg.num_gpus = 8;
    SequenceResult sfr =
        runSequence(options(SequenceScheme::PureSfr), cfg, seq);
    SequenceResult afr =
        runSequence(options(SequenceScheme::PureAfr), cfg, seq);
    SequenceResult hybrid =
        runSequence(options(SequenceScheme::HybridAfrSfr, 2), cfg, seq);

    EXPECT_EQ(sfr.gpus_per_group, 8u);
    EXPECT_EQ(afr.gpus_per_group, 1u);
    EXPECT_EQ(hybrid.gpus_per_group, 4u);

    EXPECT_LT(sfr.avg_latency, hybrid.avg_latency);
    EXPECT_LT(hybrid.avg_latency, afr.avg_latency);
    EXPECT_LT(afr.avg_frame_interval, sfr.avg_frame_interval);
}

TEST(Sequence, BitIdenticalAcrossJobCounts)
{
    // The tentpole determinism gate: sequence results are bit-identical
    // across --jobs {1, 2, 8}. Frames may be simulated concurrently, but
    // each frame is deterministic and the stream arithmetic is serial.
    SequenceTrace seq = testSequence(8);
    SystemConfig cfg;
    cfg.num_gpus = 8;
    for (SequenceScheme scheme :
         {SequenceScheme::PureSfr, SequenceScheme::PureAfr,
          SequenceScheme::HybridAfrSfr}) {
        setGlobalJobs(1);
        SequenceResult base = runSequence(options(scheme), cfg, seq);
        for (unsigned jobs : {2u, 8u}) {
            setGlobalJobs(jobs);
            SequenceResult r = runSequence(options(scheme), cfg, seq);
            expectIdentical(base, r);
        }
        setGlobalJobs(1);
    }
}

TEST(Sequence, SingleFrameCollapsesToFrameResult)
{
    // num_frames = 1 under pure SFR is exactly today's single-frame run:
    // same accounting bits, stream metrics degenerate to the frame's.
    SequenceTrace seq = testSequence(1);
    SystemConfig cfg;
    cfg.num_gpus = 8;
    SequenceOptions opt = options(SequenceScheme::PureSfr);
    SequenceResult r = runSequence(opt, cfg, seq);

    FrameResult direct = runScheme(opt.intra_scheme, cfg, seq.frame(0));
    ASSERT_EQ(r.frames.size(), 1u);
    EXPECT_TRUE(metricsEqual<FrameAccounting>(r.frames[0], direct));
    EXPECT_EQ(r.makespan, direct.cycles);
    EXPECT_EQ(r.avg_latency, static_cast<double>(direct.cycles));
    EXPECT_EQ(r.micro_stutter, 0.0);
    EXPECT_EQ(r.frame_start[0], 0u);
    EXPECT_EQ(r.frame_complete[0], direct.cycles);
}

TEST(Sequence, CarryOverOverlapsTailsWithoutChangingLatency)
{
    SequenceTrace seq = testSequence(6);
    SystemConfig cfg;
    cfg.num_gpus = 8;
    SequenceOptions with = options(SequenceScheme::HybridAfrSfr, 2);
    with.carry_over = true;
    SequenceOptions without = with;
    without.carry_over = false;

    SequenceResult a = runSequence(with, cfg, seq);
    SequenceResult b = runSequence(without, cfg, seq);

    // Per-frame simulations are untouched by the stream schedule.
    ASSERT_EQ(a.frames.size(), b.frames.size());
    for (std::size_t i = 0; i < a.frames.size(); ++i)
        EXPECT_TRUE(metricsEqual<FrameAccounting>(a.frames[i],
                                                  b.frames[i]));
    // Carry-over can only pull completions earlier, never later.
    for (std::size_t i = 0; i < a.frames.size(); ++i)
        EXPECT_LE(a.frame_complete[i], b.frame_complete[i]);
    EXPECT_LE(a.makespan, b.makespan);
    // CHOPIN frames have a composition tail, so the overlap is real.
    EXPECT_LT(a.makespan, b.makespan);
}

TEST(Sequence, EpochTimingInvariantForSerialEquivalentSchemes)
{
    // epoch_timing swaps the CHOPIN composition timing engine; schemes
    // that never route through it must be bit-identical either way, even
    // across a whole stream.
    SequenceTrace seq = testSequence(4);
    SystemConfig cfg;
    cfg.num_gpus = 8;
    for (Scheme intra :
         {Scheme::Duplication, Scheme::Gpupd, Scheme::SingleGpu}) {
        SequenceOptions opt = options(SequenceScheme::HybridAfrSfr, 2);
        opt.intra_scheme = intra;
        SystemConfig off = cfg, on = cfg;
        off.epoch_timing = false;
        on.epoch_timing = true;
        SequenceResult a = runSequence(opt, off, seq);
        SequenceResult b = runSequence(opt, on, seq);
        ASSERT_EQ(a.frames.size(), b.frames.size());
        for (std::size_t i = 0; i < a.frames.size(); ++i)
            EXPECT_TRUE(metricsEqual<FrameAccounting>(a.frames[i],
                                                      b.frames[i]))
                << toString(intra) << " frame " << i;
        EXPECT_EQ(a.sequence_hash, b.sequence_hash);
    }
}

TEST(Sequence, TracerGetsOneSpanPerFrame)
{
    SequenceTrace seq = testSequence(4);
    SystemConfig cfg;
    cfg.num_gpus = 8;
    Tracer tracer;
    SequenceResult r = runSequence(
        options(SequenceScheme::HybridAfrSfr, 2), cfg, seq, &tracer);
    EXPECT_EQ(r.num_frames, 4u);
    EXPECT_EQ(tracer.spanCount(), 4u);
}

TEST(Sequence, OptionsFingerprintCoversEveryField)
{
    SequenceOptions base;
    const std::uint64_t fp = base.fingerprint();
    {
        SequenceOptions o = base;
        o.scheme = SequenceScheme::PureAfr;
        EXPECT_NE(o.fingerprint(), fp);
    }
    {
        SequenceOptions o = base;
        o.intra_scheme = Scheme::Duplication;
        EXPECT_NE(o.fingerprint(), fp);
    }
    {
        SequenceOptions o = base;
        o.afr_groups += 2;
        EXPECT_NE(o.fingerprint(), fp);
    }
    {
        SequenceOptions o = base;
        o.carry_over = !o.carry_over;
        EXPECT_NE(o.fingerprint(), fp);
    }
}

TEST(SequenceDeath, IndivisibleGroupCountPanics)
{
    SequenceTrace seq = testSequence(2);
    SystemConfig cfg;
    cfg.num_gpus = 8;
    EXPECT_DEATH(runSequence(options(SequenceScheme::HybridAfrSfr, 3),
                             cfg, seq),
                 "not divisible");
}

} // namespace
} // namespace chopin

#include <gtest/gtest.h>

#include <vector>

#include "sfr/draw_scheduler.hh"
#include "util/rng.hh"

namespace chopin
{
namespace
{

/** Fixture with n idle pipelines. */
class SchedulerTest : public ::testing::Test
{
  protected:
    void
    makePipes(unsigned n)
    {
        pipes.clear();
        pipes.reserve(n);
        for (unsigned i = 0; i < n; ++i)
            pipes.emplace_back(params);
    }

    DrawStats
    statsOf(std::uint64_t tris)
    {
        DrawStats s;
        s.tris_in = tris;
        s.verts_shaded = 3 * tris;
        return s;
    }

    TimingParams params;
    std::vector<GpuPipeline> pipes;
};

TEST_F(SchedulerTest, RoundRobinCycles)
{
    makePipes(4);
    DrawCommandScheduler sched(pipes, DrawPolicy::RoundRobin, 1);
    for (int i = 0; i < 12; ++i)
        EXPECT_EQ(sched.schedule(100, 0), static_cast<GpuId>(i % 4));
}

TEST_F(SchedulerTest, FewestRemainingPrefersIdleGpu)
{
    makePipes(3);
    DrawCommandScheduler sched(pipes, DrawPolicy::FewestRemaining, 1);
    // Nothing processed yet: assignments spread by scheduled counts.
    EXPECT_EQ(sched.schedule(1000, 0), 0u);
    EXPECT_EQ(sched.schedule(10, 0), 1u);
    EXPECT_EQ(sched.schedule(10, 0), 2u);
    // GPU1/2 have 10 remaining; GPU0 has 1000: next goes to 1 (lowest id
    // among minimum).
    EXPECT_EQ(sched.schedule(10, 0), 1u);
}

TEST_F(SchedulerTest, ProcessedFeedbackUnloadsBusyGpu)
{
    makePipes(2);
    DrawCommandScheduler sched(pipes, DrawPolicy::FewestRemaining, 1);
    GpuId g0 = sched.schedule(1000, 0);
    EXPECT_EQ(g0, 0u);
    pipes[0].submitDraw(0, statsOf(1000), 0);
    GpuId g1 = sched.schedule(1000, 0);
    EXPECT_EQ(g1, 1u);
    pipes[1].submitDraw(1, statsOf(1000), 0);
    // After both pipelines drain, remaining counts return to zero and the
    // tie-break picks GPU0 again.
    Tick late = std::max(pipes[0].finishTime(), pipes[1].finishTime());
    EXPECT_EQ(sched.remainingEstimate(0, late), 0u);
    EXPECT_EQ(sched.remainingEstimate(1, late), 0u);
    EXPECT_EQ(sched.schedule(10, late), 0u);
}

TEST_F(SchedulerTest, HeavyTailedDrawsBalanceBetterThanRoundRobin)
{
    // The Fig. 8 effect: with heavy-tailed draw sizes, round-robin piles
    // work while fewest-remaining balances.
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        Rng rng(seed);
        std::vector<std::uint64_t> draws;
        for (int i = 0; i < 400; ++i)
            draws.push_back(
                1 + static_cast<std::uint64_t>(rng.nextLogNormal(3.0, 1.3)));

        auto imbalance = [&](DrawPolicy policy) {
            makePipes(8);
            DrawCommandScheduler sched(pipes, policy, 1);
            std::vector<std::uint64_t> load(8, 0);
            std::uint64_t total = 0;
            for (std::uint64_t d : draws) {
                load[sched.schedule(d, 0)] += d;
                total += d;
            }
            std::uint64_t max_l = 0;
            for (std::uint64_t l : load)
                max_l = std::max(max_l, l);
            // max/average load: 1.0 is perfect balance (the slowest GPU
            // gates the frame, Section IV-D).
            return static_cast<double>(max_l) * 8.0 /
                   static_cast<double>(total);
        };

        // A single giant draw bounds any scheduler from below.
        std::uint64_t total = 0, biggest = 0;
        for (std::uint64_t d : draws) {
            total += d;
            biggest = std::max(biggest, d);
        }
        double lower_bound =
            std::max(1.0, static_cast<double>(biggest) * 8.0 /
                              static_cast<double>(total));

        double rr = imbalance(DrawPolicy::RoundRobin);
        double balanced = imbalance(DrawPolicy::FewestRemaining);
        EXPECT_LT(balanced, rr) << "seed " << seed;
        // Online greedy (draws arrive in stream order) is within 2x of the
        // optimum; in practice it sits well below that.
        EXPECT_LT(balanced, std::max(1.4, 1.9 * lower_bound))
            << "seed " << seed;
    }
}

TEST_F(SchedulerTest, UpdateIntervalMakesFeedbackStale)
{
    makePipes(2);
    // With a large update interval the scheduler cannot see fine-grained
    // progress: processed counts snap to multiples of 512.
    DrawCommandScheduler sched(pipes, DrawPolicy::FewestRemaining, 512);
    sched.schedule(600, 0); // -> GPU0
    pipes[0].submitDraw(0, statsOf(600), 0);
    Tick end = pipes[0].finishTime();
    // True processed = 600, visible = 512 -> remaining estimate 88.
    EXPECT_EQ(sched.remainingEstimate(0, end), 600u - 512u);

    DrawCommandScheduler fine(pipes, DrawPolicy::FewestRemaining, 1);
    fine.schedule(600, 0);
    EXPECT_EQ(fine.remainingEstimate(0, end), 0u);
}

TEST_F(SchedulerTest, StatusTrafficAccumulates)
{
    makePipes(2);
    DrawCommandScheduler sched(pipes, DrawPolicy::FewestRemaining, 1);
    Bytes before = sched.statusTraffic();
    sched.schedule(100, 0);
    EXPECT_GT(sched.statusTraffic(), before);
}

TEST_F(SchedulerTest, ExternalAccountingAffectsEstimates)
{
    makePipes(2);
    DrawCommandScheduler sched(pipes, DrawPolicy::FewestRemaining, 1);
    sched.accountExternal(0, 5000);
    EXPECT_EQ(sched.remainingEstimate(0, 0), 5000u);
    EXPECT_EQ(sched.schedule(10, 0), 1u);
}

} // namespace
} // namespace chopin

/**
 * @file
 * SystemConfig::fingerprint() exhaustiveness: the fingerprint is the only
 * sanctioned config cache key (bench harnesses, sweep engine, result
 * cache), so *every* public field — including the nested TimingParams and
 * LinkParams — must move it. A field added to the config without extending
 * fingerprint() makes a perturbation below collide with the default and
 * fails this suite, instead of silently serving stale cached results.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "sfr/config.hh"

namespace chopin
{
namespace
{

struct Perturbation
{
    std::string field;
    SystemConfig cfg;
};

std::vector<Perturbation>
perturbEveryField()
{
    std::vector<Perturbation> out;
    auto add = [&](const std::string &field, auto &&mutate) {
        SystemConfig cfg;
        mutate(cfg);
        out.push_back({field, cfg});
    };

    add("num_gpus", [](SystemConfig &c) { c.num_gpus += 1; });

    // TimingParams
    add("timing.shader_lanes",
        [](SystemConfig &c) { c.timing.shader_lanes += 1.0; });
    add("timing.vert_shader_ops",
        [](SystemConfig &c) { c.timing.vert_shader_ops += 1.0; });
    add("timing.frag_shader_ops",
        [](SystemConfig &c) { c.timing.frag_shader_ops += 1.0; });
    add("timing.tri_setup_rate",
        [](SystemConfig &c) { c.timing.tri_setup_rate += 1.0; });
    add("timing.tri_traverse_rate",
        [](SystemConfig &c) { c.timing.tri_traverse_rate += 1.0; });
    add("timing.coarse_reject_rate",
        [](SystemConfig &c) { c.timing.coarse_reject_rate += 1.0; });
    add("timing.raster_frag_rate",
        [](SystemConfig &c) { c.timing.raster_frag_rate += 1.0; });
    add("timing.early_z_rate",
        [](SystemConfig &c) { c.timing.early_z_rate += 1.0; });
    add("timing.rop_rate", [](SystemConfig &c) { c.timing.rop_rate += 1.0; });
    add("timing.draw_setup_cycles",
        [](SystemConfig &c) { c.timing.draw_setup_cycles += 1; });
    add("timing.batch_tris",
        [](SystemConfig &c) { c.timing.batch_tris += 1; });
    add("timing.driver_issue_cycles",
        [](SystemConfig &c) { c.timing.driver_issue_cycles += 1; });
    add("timing.proj_ops_per_vert",
        [](SystemConfig &c) { c.timing.proj_ops_per_vert += 1.0; });
    add("timing.tex_rate", [](SystemConfig &c) { c.timing.tex_rate += 1.0; });
    add("timing.compose_rate",
        [](SystemConfig &c) { c.timing.compose_rate += 1.0; });

    // LinkParams
    add("link.bytes_per_cycle",
        [](SystemConfig &c) { c.link.bytes_per_cycle += 1.0; });
    add("link.latency", [](SystemConfig &c) { c.link.latency += 1; });

    // SFR / CHOPIN / GPUpd knobs
    add("tile_size", [](SystemConfig &c) { c.tile_size *= 2; });
    add("tile_assignment",
        [](SystemConfig &c) { c.tile_assignment = TileAssignment::Blocked; });
    add("group_threshold", [](SystemConfig &c) { c.group_threshold += 1; });
    add("sched_update_tris",
        [](SystemConfig &c) { c.sched_update_tris += 1; });
    add("cull_retention", [](SystemConfig &c) { c.cull_retention = 0.25; });
    add("comp_payload",
        [](SystemConfig &c) { c.comp_payload = CompPayload::FullTiles; });
    add("gpupd_batch_prims",
        [](SystemConfig &c) { c.gpupd_batch_prims += 1; });
    add("gpupd_runahead",
        [](SystemConfig &c) { c.gpupd_runahead = !c.gpupd_runahead; });
    add("epoch_timing",
        [](SystemConfig &c) { c.epoch_timing = !c.epoch_timing; });

    return out;
}

TEST(ConfigFingerprint, StableForEqualConfigs)
{
    SystemConfig a, b;
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    b.num_gpus = a.num_gpus;
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(ConfigFingerprint, EveryFieldPerturbationMovesTheFingerprint)
{
    const std::uint64_t base = SystemConfig{}.fingerprint();
    for (const Perturbation &p : perturbEveryField())
        EXPECT_NE(p.cfg.fingerprint(), base)
            << "field " << p.field
            << " is not covered by SystemConfig::fingerprint(); a cached "
               "result would alias across values of it";
}

TEST(ConfigFingerprint, PerturbationsAreMutuallyDistinct)
{
    // Stronger than != base: no two single-field perturbations may collide
    // with each other either (keys address files in a shared directory).
    std::vector<Perturbation> all = perturbEveryField();
    std::set<std::uint64_t> keys{SystemConfig{}.fingerprint()};
    for (const Perturbation &p : all)
        keys.insert(p.cfg.fingerprint());
    EXPECT_EQ(keys.size(), all.size() + 1)
        << "two distinct configs produced the same fingerprint";
}

TEST(ConfigFingerprint, IdealLinksFingerprintDistinctly)
{
    SystemConfig real;
    SystemConfig ideal;
    ideal.link = LinkParams::ideal(); // infinity bandwidth, zero latency
    EXPECT_NE(real.fingerprint(), ideal.fingerprint());
}

} // namespace
} // namespace chopin

#include <gtest/gtest.h>

#include "sfr/afr.hh"
#include "trace/generator.hh"

namespace chopin
{
namespace
{

std::vector<FrameTrace>
frameSequence(int count)
{
    std::vector<FrameTrace> frames;
    BenchmarkProfile p = scaleProfile(benchmarkProfile("wolf"), 16);
    for (int f = 0; f < count; ++f) {
        BenchmarkProfile pf = p;
        pf.seed += static_cast<std::uint64_t>(f);
        frames.push_back(generateTrace(pf));
    }
    return frames;
}

TEST(Afr, PureSfrIsSingleGroup)
{
    auto frames = frameSequence(3);
    SystemConfig cfg;
    cfg.num_gpus = 8;
    AfrResult r = runAfr(cfg, frames, 1);
    EXPECT_EQ(r.afr_groups, 1u);
    EXPECT_EQ(r.gpus_per_group, 8u);
    ASSERT_EQ(r.frame_latency.size(), 3u);
    // One group: frames serialize; makespan is the sum of latencies.
    Tick sum = 0;
    for (Tick t : r.frame_latency)
        sum += t;
    EXPECT_EQ(r.makespan, sum);
}

TEST(Afr, PureAfrPipelinesFrames)
{
    auto frames = frameSequence(4);
    SystemConfig cfg;
    cfg.num_gpus = 4;
    AfrResult r = runAfr(cfg, frames, 4);
    EXPECT_EQ(r.gpus_per_group, 1u);
    // Four single-GPU groups render four frames concurrently: the makespan
    // is the slowest frame, not the sum.
    Tick max_latency = 0, sum = 0;
    for (Tick t : r.frame_latency) {
        max_latency = std::max(max_latency, t);
        sum += t;
    }
    EXPECT_EQ(r.makespan, max_latency);
    EXPECT_LT(r.makespan, sum);
}

TEST(Afr, MicroStutterTradeoff)
{
    // The paper's motivation: AFR raises throughput (smaller average frame
    // interval) but leaves single-frame latency at small-group levels.
    auto frames = frameSequence(8);
    SystemConfig cfg;
    cfg.num_gpus = 8;
    AfrResult sfr = runAfr(cfg, frames, 1);
    AfrResult afr = runAfr(cfg, frames, 8);
    EXPECT_LT(afr.avgFrameInterval(), sfr.avgFrameInterval());
    EXPECT_LT(sfr.avgLatency(), afr.avgLatency());
}

TEST(Afr, FramesRoundRobinAcrossGroups)
{
    auto frames = frameSequence(4);
    SystemConfig cfg;
    cfg.num_gpus = 4;
    AfrResult r = runAfr(cfg, frames, 2);
    // Frames 0,2 -> group 0; 1,3 -> group 1: frame 2 completes after 0.
    EXPECT_GT(r.frame_complete[2], r.frame_complete[0]);
    EXPECT_GT(r.frame_complete[3], r.frame_complete[1]);
}

TEST(AfrDeath, IndivisibleGroupCountPanics)
{
    auto frames = frameSequence(1);
    SystemConfig cfg;
    cfg.num_gpus = 8;
    EXPECT_DEATH(runAfr(cfg, frames, 3), "not divisible");
}

} // namespace
} // namespace chopin

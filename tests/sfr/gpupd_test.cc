#include <gtest/gtest.h>

#include "sfr/schemes.hh"
#include "trace/generator.hh"

namespace chopin
{
namespace
{

const FrameTrace &
testTrace()
{
    static FrameTrace trace = generateBenchmark("nfs", 16);
    return trace;
}

TEST(Gpupd, DistributionTrafficIsAccounted)
{
    SystemConfig cfg;
    cfg.num_gpus = 8;
    FrameResult r = runGpupd(cfg, testTrace(), false);
    Bytes dist = r.traffic.ofClass(TrafficClass::PrimDist);
    EXPECT_GT(dist, 0u);
    // Each primitive ID is 4 bytes and primitives may be duplicated to
    // several owners; total ID bytes stay within a small multiple of 4B/tri.
    std::uint64_t tris = testTrace().totalTriangles();
    EXPECT_LE(dist, tris * 4 * 8);
    EXPECT_GE(dist, tris); // at least ~1 byte/tri reaches the network
}

TEST(Gpupd, DistributionOverheadGrowsWithGpuCount)
{
    double prev = 0.0;
    for (unsigned gpus : {2u, 4u, 8u}) {
        SystemConfig cfg;
        cfg.num_gpus = gpus;
        FrameResult r = runGpupd(cfg, testTrace(), false);
        double frac = static_cast<double>(r.breakdown.prim_distribution) /
                      static_cast<double>(r.cycles);
        EXPECT_GT(frac, prev) << gpus << " GPUs";
        prev = frac;
    }
}

TEST(Gpupd, LargerBatchesReduceDistributionTime)
{
    SystemConfig small_batches;
    small_batches.num_gpus = 8;
    small_batches.gpupd_batch_prims = 256;
    SystemConfig big_batches = small_batches;
    big_batches.gpupd_batch_prims = 16384;
    FrameResult small_r = runGpupd(small_batches, testTrace(), false);
    FrameResult big_r = runGpupd(big_batches, testTrace(), false);
    // Fewer batches -> fewer sequential latency-bound phases.
    EXPECT_LT(big_r.breakdown.prim_distribution,
              small_r.breakdown.prim_distribution);
}

TEST(Gpupd, RunaheadNeverHurts)
{
    SystemConfig with;
    with.num_gpus = 8;
    with.gpupd_runahead = true;
    SystemConfig without = with;
    without.gpupd_runahead = false;
    FrameResult with_r = runGpupd(with, testTrace(), false);
    FrameResult without_r = runGpupd(without, testTrace(), false);
    EXPECT_LE(with_r.cycles, without_r.cycles);
    // Functionally identical either way.
    EXPECT_EQ(compareImages(with_r.image, without_r.image).differing_pixels,
              0);
}

TEST(Gpupd, IdealHasNoDistributionStall)
{
    SystemConfig cfg;
    cfg.num_gpus = 8;
    FrameResult ideal = runGpupd(cfg, testTrace(), true);
    FrameResult real = runGpupd(cfg, testTrace(), false);
    EXPECT_EQ(ideal.breakdown.prim_distribution, 0u);
    EXPECT_LT(ideal.cycles, real.cycles);
}

TEST(Gpupd, GeometryIsDeduplicatedVersusDuplication)
{
    SystemConfig cfg;
    cfg.num_gpus = 8;
    FrameResult gpupd = runGpupd(cfg, testTrace(), false);
    FrameResult dup = runDuplication(cfg, testTrace());
    // Sort-first distribution removes most redundant vertex shading;
    // only multi-tile primitives stay duplicated.
    EXPECT_LT(gpupd.geom_busy, dup.geom_busy);
    // Fragment work is identical: same tiles, same fragments.
    EXPECT_EQ(gpupd.totals.frags_written, dup.totals.frags_written);
}

TEST(Gpupd, LatencySensitivityComesFromSequentialPhases)
{
    SystemConfig lo;
    lo.num_gpus = 8;
    lo.link.latency = 100;
    SystemConfig hi = lo;
    hi.link.latency = 400;
    FrameResult lo_r = runGpupd(lo, testTrace(), false);
    FrameResult hi_r = runGpupd(hi, testTrace(), false);
    EXPECT_GT(hi_r.breakdown.prim_distribution,
              lo_r.breakdown.prim_distribution);
}

} // namespace
} // namespace chopin

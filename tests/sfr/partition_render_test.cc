#include <gtest/gtest.h>

#include "gfx/renderer.hh"
#include "sfr/partition_render.hh"
#include "trace/generator.hh"

namespace chopin
{
namespace
{

/** A draw with one sizable screen-space triangle per quadrant. */
DrawCommand
quadrantDraw()
{
    DrawCommand cmd;
    cmd.id = 0;
    auto add = [&](float cx, float cy) {
        Triangle t;
        // Front-facing (NDC clockwise) triangle around (cx, cy).
        t.v[0] = {{cx - 0.3f, cy - 0.3f, 0.0f}, {1, 0, 0, 1}};
        t.v[1] = {{cx, cy + 0.3f, 0.0f}, {0, 1, 0, 1}};
        t.v[2] = {{cx + 0.3f, cy - 0.3f, 0.0f}, {0, 0, 1, 1}};
        cmd.triangles.push_back(t);
    };
    add(-0.5f, -0.5f);
    add(0.5f, -0.5f);
    add(-0.5f, 0.5f);
    add(0.5f, 0.5f);
    return cmd;
}

class PartitionTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PartitionTest, FragmentCountsPartitionExactly)
{
    unsigned n = GetParam();
    Viewport vp{512, 512};
    TileGrid grid(vp.width, vp.height, n);
    DrawCommand cmd = quadrantDraw();

    // Unpartitioned reference.
    Surface ref(vp.width, vp.height);
    DrawInput in;
    in.triangles = cmd.triangles;
    in.mvp = Mat4::identity();
    in.state = cmd.state;
    in.draw_id = cmd.id;
    DrawStats ref_stats = renderDraw(ref, vp, in);

    Surface part(vp.width, vp.height);
    PartitionedDraw pd = renderDrawPartitioned(
        part, vp, cmd, Mat4::identity(), grid,
        GeometryCharging::Duplicated, nullptr);

    ASSERT_EQ(pd.per_gpu.size(), n);
    DrawStats sum;
    for (const DrawStats &s : pd.per_gpu) {
        sum.frags_generated += s.frags_generated;
        sum.frags_written += s.frags_written;
        sum.frags_shaded += s.frags_shaded;
        // Duplicated charging: every GPU does full geometry.
        EXPECT_EQ(s.verts_shaded, ref_stats.verts_shaded);
        EXPECT_EQ(s.tris_in, ref_stats.tris_in);
    }
    EXPECT_EQ(sum.frags_generated, ref_stats.frags_generated);
    EXPECT_EQ(sum.frags_written, ref_stats.frags_written);
    EXPECT_EQ(sum.frags_shaded, ref_stats.frags_shaded);

    // The shared surface is pixel-identical to the reference render.
    EXPECT_EQ(compareImages(ref.color(), part.color()).differing_pixels, 0);
}

TEST_P(PartitionTest, RasterWorkSplitsIntoTraversalAndReject)
{
    unsigned n = GetParam();
    Viewport vp{512, 512};
    TileGrid grid(vp.width, vp.height, n);
    DrawCommand cmd = quadrantDraw();
    Surface part(vp.width, vp.height);
    PartitionedDraw pd = renderDrawPartitioned(
        part, vp, cmd, Mat4::identity(), grid,
        GeometryCharging::Duplicated, nullptr);
    for (const DrawStats &s : pd.per_gpu) {
        // Every triangle is either traversed or coarse-rejected per GPU.
        EXPECT_EQ(s.tris_rasterized + s.tris_coarse_rejected, 4u);
    }
}

TEST_P(PartitionTest, OwnersOnlyChargesGeometryToOwners)
{
    unsigned n = GetParam();
    Viewport vp{512, 512};
    TileGrid grid(vp.width, vp.height, n);
    DrawCommand cmd = quadrantDraw();
    Surface part(vp.width, vp.height);
    PartitionedDraw pd = renderDrawPartitioned(
        part, vp, cmd, Mat4::identity(), grid,
        GeometryCharging::OwnersOnly, nullptr);

    std::uint64_t total_tris_in = 0;
    std::uint64_t total_owned = 0;
    for (unsigned g = 0; g < n; ++g) {
        total_tris_in += pd.per_gpu[g].tris_in;
        total_owned += pd.owned_tris[g];
        // Under sort-first nobody coarse-rejects: non-owners never receive
        // the primitive.
        EXPECT_EQ(pd.per_gpu[g].tris_coarse_rejected, 0u);
        EXPECT_EQ(pd.per_gpu[g].tris_in, pd.owned_tris[g]);
    }
    // Primitives spanning several GPUs' tiles are duplicated to each owner.
    EXPECT_GE(total_owned, 4u);
    EXPECT_EQ(total_tris_in, total_owned);
    if (n == 1) {
        EXPECT_EQ(total_owned, 4u);
    }
}

INSTANTIATE_TEST_SUITE_P(GpuCounts, PartitionTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

TEST(PartitionRender, MatchesUnpartitionedOnRealTrace)
{
    FrameTrace trace = generateBenchmark("wolf", 32);
    Viewport vp = trace.viewport;
    TileGrid grid(vp.width, vp.height, 4);

    Surface ref(vp.width, vp.height);
    ref.clear(trace.clear_color, trace.clear_depth);
    Surface part(vp.width, vp.height);
    part.clear(trace.clear_color, trace.clear_depth);

    for (const DrawCommand &cmd : trace.draws) {
        if (cmd.state.render_target != 0)
            continue;
        DrawInput in;
        in.triangles = cmd.triangles;
        in.mvp = trace.view_proj * cmd.model;
        in.state = cmd.state;
        in.draw_id = cmd.id;
        in.alpha_ref = cmd.alpha_ref;
        in.backface_cull = cmd.backface_cull;
        renderDraw(ref, vp, in);
        renderDrawPartitioned(part, vp, cmd, trace.view_proj, grid,
                              GeometryCharging::Duplicated, nullptr);
    }
    EXPECT_EQ(compareImages(ref.color(), part.color()).differing_pixels, 0);
}

} // namespace
} // namespace chopin

#include <gtest/gtest.h>

#include <algorithm>

#include "sfr/comp_scheduler.hh"
#include "util/rng.hh"

namespace chopin
{
namespace
{

/** Build a job with uniform region sizes and given ready times. */
CompositionJob
makeJob(std::vector<Tick> ready, std::uint64_t pair_px = 4096,
        std::uint64_t self_px = 4096)
{
    CompositionJob job;
    job.num_gpus = static_cast<unsigned>(ready.size());
    job.ready = std::move(ready);
    job.pair_pixels.assign(
        static_cast<std::size_t>(job.num_gpus) * job.num_gpus, pair_px);
    for (unsigned g = 0; g < job.num_gpus; ++g)
        job.pair_pixels[static_cast<std::size_t>(g) * job.num_gpus + g] = 0;
    job.self_pixels.assign(job.num_gpus, self_px);
    job.subimage_pixels.assign(job.num_gpus,
                               pair_px * (job.num_gpus - 1) + self_px);
    job.screen_pixels = 1u << 20;
    return job;
}

TimingParams timing;
LinkParams link{64.0, 200};

using ComposeFn = CompositionTiming (*)(const CompositionJob &,
                                        Interconnect &,
                                        const TimingParams &);

struct AlgoCase
{
    const char *name;
    ComposeFn fn;
};

class CompositionLiveness : public ::testing::TestWithParam<AlgoCase>
{
};

TEST_P(CompositionLiveness, CompletesForRandomReadyTimes)
{
    ComposeFn fn = GetParam().fn;
    for (unsigned n : {1u, 2u, 3u, 4u, 5u, 8u, 16u}) {
        for (std::uint64_t seed : {1u, 2u, 3u}) {
            Rng rng(seed * 977 + n);
            std::vector<Tick> ready(n);
            for (Tick &r : ready)
                r = rng.nextBounded(100000);
            CompositionJob job = makeJob(ready);
            // Randomize region sizes too, keeping the ownership invariant:
            // routed pixels must equal the touched sub-image pixels.
            for (std::uint64_t &p : job.pair_pixels)
                p = p ? rng.nextBounded(20000) : 0;
            for (unsigned g = 0; g < n; ++g) {
                std::uint64_t routed = job.self_pixels[g];
                for (unsigned dst = 0; dst < n; ++dst)
                    routed += job.pairPixels(g, dst);
                job.subimage_pixels[g] = routed;
            }
            Interconnect net(n, link);
            CompositionTiming t = fn(job, net, timing);
            Tick max_ready = *std::max_element(job.ready.begin(),
                                               job.ready.end());
            EXPECT_GE(t.end, max_ready) << GetParam().name << " n=" << n;
            ASSERT_EQ(t.gpu_done.size(), n);
            for (Tick d : t.gpu_done)
                EXPECT_LE(d, t.end);
        }
    }
}

TEST_P(CompositionLiveness, SingleGpuMovesNoBytes)
{
    // N=1 collapses every algorithm to "the sole GPU already holds the
    // frame": no traffic, no messages, and completion is bounded by the
    // GPU's own readiness plus local composition work.
    ComposeFn fn = GetParam().fn;
    for (Tick ready : {Tick{0}, Tick{12345}}) {
        CompositionJob job = makeJob({ready});
        Interconnect net(1, link);
        CompositionTiming t = fn(job, net, timing);
        EXPECT_EQ(net.traffic().total, 0u) << GetParam().name;
        EXPECT_EQ(net.traffic().messages, 0u) << GetParam().name;
        EXPECT_GE(t.end, ready) << GetParam().name;
        ASSERT_EQ(t.gpu_done.size(), 1u);
        EXPECT_LE(t.gpu_done[0], t.end) << GetParam().name;
    }
}

TEST_P(CompositionLiveness, SingleGpuWithEmptySubimageFinishesAtReady)
{
    // The fully degenerate job: one GPU, nothing rendered. No composition
    // work exists, so the phase must end exactly when the GPU is ready.
    ComposeFn fn = GetParam().fn;
    CompositionJob job = makeJob({777}, 0, 0);
    job.subimage_pixels[0] = 0;
    Interconnect net(1, link);
    CompositionTiming t = fn(job, net, timing);
    EXPECT_EQ(net.traffic().total, 0u) << GetParam().name;
    EXPECT_EQ(t.end, 777u) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Algos, CompositionLiveness,
    ::testing::Values(AlgoCase{"direct", &composeOpaqueDirectSend},
                      AlgoCase{"scheduled", &composeOpaqueScheduled},
                      AlgoCase{"chain", &composeTransparentChain},
                      AlgoCase{"tree", &composeTransparentTree}),
    [](const auto &info) { return info.param.name; });

TEST(CompositionScheduler, SchedulerBeatsNaiveUnderStragglers)
{
    // The paper's motivating scenario: most GPUs finish early, one lags.
    // Naive direct-send convoys on the straggler; the scheduler lets the
    // early GPUs compose among themselves first.
    std::vector<Tick> ready{500000, 0, 0, 0, 0, 0, 0, 0};
    CompositionJob job = makeJob(ready, 64000);
    Interconnect net_naive(8, link);
    Interconnect net_sched(8, link);
    Tick naive = composeOpaqueDirectSend(job, net_naive, timing).end;
    Tick sched = composeOpaqueScheduled(job, net_sched, timing).end;
    EXPECT_LT(sched, naive);
}

TEST(CompositionScheduler, EveryPairExchangesExactlyOnce)
{
    unsigned n = 8;
    CompositionJob job = makeJob(std::vector<Tick>(n, 0), 1000);
    Interconnect net(n, link);
    composeOpaqueScheduled(job, net, timing);
    // n*(n-1) pairwise messages (each unordered pair exchanges both ways).
    EXPECT_EQ(net.traffic().messages, static_cast<std::uint64_t>(n * (n - 1)));
    EXPECT_EQ(net.traffic().ofClass(TrafficClass::Composition),
              static_cast<Bytes>(n * (n - 1)) * 1000 * 8);
}

TEST(CompositionScheduler, DirectSendMovesTheSameVolume)
{
    unsigned n = 8;
    CompositionJob job = makeJob(std::vector<Tick>(n, 0), 1000);
    Interconnect a(n, link), b(n, link);
    composeOpaqueDirectSend(job, a, timing);
    composeOpaqueScheduled(job, b, timing);
    EXPECT_EQ(a.traffic().total, b.traffic().total);
}

TEST(CompositionScheduler, SingleGpuComposesLocallyOnly)
{
    CompositionJob job = makeJob({1000});
    Interconnect net(1, link);
    CompositionTiming t = composeOpaqueScheduled(job, net, timing);
    EXPECT_EQ(net.traffic().total, 0u);
    EXPECT_GE(t.end, 1000u);
}

TEST(CompositionScheduler, ZeroPixelCompositionIsNearlyFree)
{
    unsigned n = 4;
    CompositionJob job = makeJob(std::vector<Tick>(n, 100), 0, 0);
    for (std::uint64_t &p : job.subimage_pixels)
        p = 0;
    Interconnect net(n, link);
    CompositionTiming t = composeOpaqueScheduled(job, net, timing);
    // Only wire latency remains.
    EXPECT_LE(t.end, 100 + 3 * link.latency + 10);
}

TEST(TransparentComposition, TreeTradesTrafficForAsynchrony)
{
    // With every GPU ready at once, the chain moves only leaf sub-images
    // while the tree's upper levels move growing partial composites: the
    // chain's traffic is strictly lower. The tree's payoff is asynchrony
    // under staggered readiness (next test).
    unsigned n = 8;
    CompositionJob job = makeJob(std::vector<Tick>(n, 0), 8000);
    for (unsigned g = 0; g < n; ++g)
        job.subimage_pixels[g] = 100000;
    Interconnect a(n, link), b(n, link);
    Tick chain = composeTransparentChain(job, a, timing).end;
    Tick tree = composeTransparentTree(job, b, timing).end;
    EXPECT_GT(chain, 0u);
    EXPECT_GT(tree, 0u);
    EXPECT_LT(a.traffic().total, b.traffic().total);
}

TEST(TransparentComposition, TreeOverlapsMergesUnderStaggeredReadiness)
{
    // GPUs finish staggered in reverse id order — the chain's left fold
    // must wait on its very first input while the tree merges the ready
    // adjacent pairs immediately.
    std::vector<Tick> ready{700000, 600000, 500000, 400000, 300000, 200000,
                            100000, 0};
    CompositionJob job = makeJob(ready, 4096);
    for (unsigned g = 0; g < 8; ++g)
        job.subimage_pixels[g] = 200000;
    Interconnect a(8, link), b(8, link);
    Tick chain = composeTransparentChain(job, a, timing).end;
    Tick tree = composeTransparentTree(job, b, timing).end;
    EXPECT_LE(tree, chain);
    EXPECT_GE(tree, 700000u); // cannot finish before the last GPU renders
}

TEST(TransparentComposition, ChainTrafficIsSubimagesPlusDistribution)
{
    unsigned n = 4;
    CompositionJob job = makeJob(std::vector<Tick>(n, 0), 0, 0);
    for (unsigned g = 0; g < n; ++g)
        job.subimage_pixels[g] = 1000;
    job.screen_pixels = 1 << 20;
    Interconnect net(n, link);
    composeTransparentChain(job, net, timing);
    // Sends into the fold: 3 x 1000 px; distribution: composite is 4000 px,
    // each non-holder owner gets 1/4 = 1000 px, 3 transfers.
    EXPECT_EQ(net.traffic().total, (3 * 1000 + 3 * 1000) * 8u);
}

} // namespace
} // namespace chopin

#include <gtest/gtest.h>

#include "sfr/grouping.hh"

namespace chopin
{
namespace
{

/** Build a trace skeleton with the given per-draw states and 100 tris. */
FrameTrace
traceOf(const std::vector<RasterState> &states,
        std::uint64_t tris_each = 100)
{
    FrameTrace t;
    t.viewport = {256, 256};
    t.num_render_targets = 4;
    t.num_depth_buffers = 4;
    for (std::size_t i = 0; i < states.size(); ++i) {
        DrawCommand d;
        d.id = static_cast<DrawId>(i);
        d.state = states[i];
        d.triangles.resize(tris_each);
        t.draws.push_back(std::move(d));
    }
    return t;
}

RasterState
base()
{
    return RasterState{};
}

TEST(Grouping, UniformStateIsOneGroup)
{
    FrameTrace t = traceOf({base(), base(), base(), base()});
    auto groups = formGroups(t);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].first_draw, 0u);
    EXPECT_EQ(groups[0].last_draw, 3u);
    EXPECT_EQ(groups[0].triangles, 400u);
    EXPECT_EQ(groups[0].opened_by, BoundaryEvent::FrameStart);
}

TEST(Grouping, Event2RenderTargetSwitch)
{
    RasterState rt1 = base();
    rt1.render_target = 1;
    rt1.depth_buffer = 1;
    FrameTrace t = traceOf({base(), rt1, rt1, base()});
    auto groups = formGroups(t);
    ASSERT_EQ(groups.size(), 3u);
    EXPECT_EQ(groups[1].opened_by, BoundaryEvent::RenderTarget);
    EXPECT_EQ(groups[2].opened_by, BoundaryEvent::RenderTarget);
    EXPECT_EQ(groups[1].render_target, 1u);
}

TEST(Grouping, Event2DepthBufferOnlySwitch)
{
    RasterState db = base();
    db.depth_buffer = 2;
    FrameTrace t = traceOf({base(), db});
    auto groups = formGroups(t);
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[1].opened_by, BoundaryEvent::RenderTarget);
}

TEST(Grouping, Event3DepthWriteToggle)
{
    RasterState ro = base();
    ro.depth_write = false;
    FrameTrace t = traceOf({base(), ro, base()});
    auto groups = formGroups(t);
    ASSERT_EQ(groups.size(), 3u);
    EXPECT_EQ(groups[1].opened_by, BoundaryEvent::DepthWrite);
    EXPECT_FALSE(groups[1].depth_write);
}

TEST(Grouping, Event4DepthFuncChange)
{
    RasterState gr = base();
    gr.depth_func = DepthFunc::GreaterEqual;
    FrameTrace t = traceOf({base(), gr});
    auto groups = formGroups(t);
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[1].opened_by, BoundaryEvent::DepthFunc);
}

TEST(Grouping, Event5BlendOpChange)
{
    RasterState over = base();
    over.blend_op = BlendOp::Over;
    over.depth_write = false;
    over.depth_test = false;
    RasterState add = over;
    add.blend_op = BlendOp::Additive;
    FrameTrace t = traceOf({base(), over, add});
    auto groups = formGroups(t);
    ASSERT_EQ(groups.size(), 3u);
    // The opaque->over boundary trips on the depth-write/test change first;
    // the over->additive boundary is a pure blend-operator change.
    EXPECT_EQ(groups[2].opened_by, BoundaryEvent::BlendOp);
    EXPECT_TRUE(groups[1].transparent());
    EXPECT_TRUE(groups[2].transparent());
}

TEST(Grouping, GroupsPartitionTheFrame)
{
    RasterState rt1 = base();
    rt1.render_target = 1;
    RasterState over = base();
    over.blend_op = BlendOp::Over;
    FrameTrace t =
        traceOf({base(), base(), rt1, rt1, base(), over, over, over});
    auto groups = formGroups(t);
    std::uint32_t next = 0;
    for (const CompositionGroup &g : groups) {
        EXPECT_EQ(g.first_draw, next);
        EXPECT_LE(g.first_draw, g.last_draw);
        next = g.last_draw + 1;
    }
    EXPECT_EQ(next, t.draws.size());
}

TEST(Grouping, EmptyTraceHasNoGroups)
{
    FrameTrace t;
    EXPECT_TRUE(formGroups(t).empty());
}

// ---- Distribution policy (Fig. 7) -----------------------------------------

CompositionGroup
groupWith(std::uint64_t tris, BlendOp op = BlendOp::Opaque,
          DepthFunc func = DepthFunc::LessEqual, bool depth_test = true,
          bool depth_write = true)
{
    CompositionGroup g;
    g.triangles = tris;
    g.blend_op = op;
    g.depth_func = func;
    g.depth_test = depth_test;
    g.depth_write = depth_write;
    return g;
}

TEST(Distributable, SmallGroupsFallBackToDuplication)
{
    EXPECT_FALSE(groupDistributable(groupWith(4095), 4096));
    EXPECT_TRUE(groupDistributable(groupWith(4096), 4096));
}

TEST(Distributable, ThresholdIsConfigurable)
{
    EXPECT_TRUE(groupDistributable(groupWith(300), 256));
    EXPECT_FALSE(groupDistributable(groupWith(300), 16384));
}

TEST(Distributable, DepthReadOnlyGroupsFallBack)
{
    EXPECT_FALSE(groupDistributable(
        groupWith(100000, BlendOp::Opaque, DepthFunc::LessEqual, true,
                  false),
        4096));
}

TEST(Distributable, NonComposableDepthFuncsFallBack)
{
    EXPECT_FALSE(groupDistributable(
        groupWith(100000, BlendOp::Opaque, DepthFunc::Equal), 4096));
    EXPECT_FALSE(groupDistributable(
        groupWith(100000, BlendOp::Opaque, DepthFunc::NotEqual), 4096));
    EXPECT_TRUE(groupDistributable(
        groupWith(100000, BlendOp::Opaque, DepthFunc::Greater), 4096));
    EXPECT_TRUE(groupDistributable(
        groupWith(100000, BlendOp::Opaque, DepthFunc::Always), 4096));
}

TEST(Distributable, DepthTestDisabledOpaqueIsDistributable)
{
    EXPECT_TRUE(groupDistributable(
        groupWith(100000, BlendOp::Opaque, DepthFunc::Equal, false), 4096));
}

TEST(Distributable, TransparentWithoutDepthTestDistributes)
{
    EXPECT_TRUE(groupDistributable(
        groupWith(100000, BlendOp::Over, DepthFunc::LessEqual, false,
                  false),
        4096));
    // Depth-tested transparency needs the distributed depth buffer.
    EXPECT_FALSE(groupDistributable(
        groupWith(100000, BlendOp::Over, DepthFunc::LessEqual, true,
                  false),
        4096));
}

} // namespace
} // namespace chopin

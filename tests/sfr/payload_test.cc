#include <gtest/gtest.h>

#include "sfr/schemes.hh"
#include "trace/generator.hh"

namespace chopin
{
namespace
{

const FrameTrace &
testTrace()
{
    static FrameTrace trace = generateBenchmark("grid", 16);
    return trace;
}

FrameResult
runWithPayload(CompPayload payload)
{
    SystemConfig cfg;
    cfg.num_gpus = 8;
    cfg.comp_payload = payload;
    return runChopin(cfg, testTrace(),
                     {DrawPolicy::FewestRemaining, true, false});
}

TEST(CompPayload, GranularityOrdersTraffic)
{
    FrameResult pixels = runWithPayload(CompPayload::WrittenPixels);
    FrameResult subtiles = runWithPayload(CompPayload::SubTiles);
    FrameResult tiles = runWithPayload(CompPayload::FullTiles);
    Bytes a = pixels.traffic.ofClass(TrafficClass::Composition);
    Bytes b = subtiles.traffic.ofClass(TrafficClass::Composition);
    Bytes c = tiles.traffic.ofClass(TrafficClass::Composition);
    EXPECT_LT(a, b);
    EXPECT_LT(b, c);
    // Coarser payloads can only slow the frame down.
    EXPECT_LE(pixels.cycles, subtiles.cycles);
    EXPECT_LE(subtiles.cycles, tiles.cycles);
}

TEST(CompPayload, GranularityNeverChangesTheImage)
{
    FrameResult pixels = runWithPayload(CompPayload::WrittenPixels);
    FrameResult tiles = runWithPayload(CompPayload::FullTiles);
    EXPECT_EQ(compareImages(pixels.image, tiles.image).differing_pixels, 0);
}

TEST(TileAssignmentInvariance, BlockedProducesTheSameImage)
{
    SystemConfig cfg;
    cfg.num_gpus = 8;
    FrameResult inter = runChopin(cfg, testTrace(),
                                  {DrawPolicy::FewestRemaining, true,
                                   false});
    cfg.tile_assignment = TileAssignment::Blocked;
    FrameResult blocked = runChopin(cfg, testTrace(),
                                    {DrawPolicy::FewestRemaining, true,
                                     false});
    // Ownership only decides which GPU holds which pixels; the composed
    // frame is identical.
    EXPECT_EQ(compareImages(inter.image, blocked.image).differing_pixels,
              0);
    FrameResult dup_blocked = runDuplication(cfg, testTrace());
    EXPECT_EQ(
        compareImages(inter.image, dup_blocked.image).differing_pixels, 0);
}

TEST(CompPayload, Names)
{
    EXPECT_EQ(toString(CompPayload::WrittenPixels), "written-pixels");
    EXPECT_EQ(toString(CompPayload::SubTiles), "8x8-subtiles");
    EXPECT_EQ(toString(CompPayload::FullTiles), "full-tiles");
}

} // namespace
} // namespace chopin

/**
 * @file
 * CHOPIN edge cases that collapse whole phases of the algorithm: a frame
 * with zero transparent groups (the transparent chain/tree fan-out never
 * runs) and a single-GPU system (every composition degenerates to a local
 * no-op). Both must still be bit-identical across host job counts — the
 * degenerate paths share the determinism contract of the full ones.
 */

#include <gtest/gtest.h>

#include "sfr/schemes.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"
#include "util/thread_pool.hh"

namespace chopin
{
namespace
{

/** Restore a deterministic single-job pool when a test exits. */
struct ScopedJobs
{
    explicit ScopedJobs(unsigned jobs) { setGlobalJobs(jobs); }
    ~ScopedJobs() { setGlobalJobs(1); }
};

void
expectIdentical(const FrameResult &a, const FrameResult &b,
                const std::string &what)
{
    EXPECT_EQ(a.frame_hash, b.frame_hash) << what;
    EXPECT_EQ(a.content_hash, b.content_hash) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.totals.tris_rasterized, b.totals.tris_rasterized) << what;
    EXPECT_EQ(a.totals.frags_written, b.totals.frags_written) << what;
    EXPECT_EQ(a.traffic.total, b.traffic.total) << what;
    EXPECT_EQ(a.traffic.messages, b.traffic.messages) << what;
    EXPECT_EQ(a.breakdown.composition, b.breakdown.composition) << what;
}

/** ut3 scaled for test speed, with every transparent draw removed. */
FrameTrace
opaqueOnlyTrace()
{
    BenchmarkProfile p = scaleProfile(benchmarkProfile("ut3"), 32);
    p.transparent_draw_frac = 0.0;
    p.additive_frac = 0.0;
    return generateTrace(p);
}

class ChopinEdgeTest : public ::testing::TestWithParam<Scheme>
{
};

TEST_P(ChopinEdgeTest, ZeroTransparentGroupsIsDeterministicAcrossJobs)
{
    Scheme scheme = GetParam();
    ScopedJobs restore(1);
    SystemConfig cfg;
    cfg.num_gpus = 8;
    FrameTrace trace = opaqueOnlyTrace();

    setGlobalJobs(1);
    FrameResult serial = runScheme(scheme, cfg, trace);
    for (unsigned jobs : {2u, 8u}) {
        setGlobalJobs(jobs);
        FrameResult parallel = runScheme(scheme, cfg, trace);
        expectIdentical(serial, parallel,
                        toString(scheme) + " opaque-only jobs=" +
                            std::to_string(jobs));
    }
}

TEST_P(ChopinEdgeTest, SingleGpuIsDeterministicAcrossJobs)
{
    Scheme scheme = GetParam();
    ScopedJobs restore(1);
    SystemConfig cfg;
    cfg.num_gpus = 1;
    FrameTrace trace = generateBenchmark("ut3", 32);

    setGlobalJobs(1);
    FrameResult serial = runScheme(scheme, cfg, trace);
    for (unsigned jobs : {2u, 8u}) {
        setGlobalJobs(jobs);
        FrameResult parallel = runScheme(scheme, cfg, trace);
        expectIdentical(serial, parallel,
                        toString(scheme) + " num_gpus=1 jobs=" +
                            std::to_string(jobs));
    }

    // With one GPU there is nobody to exchange sub-images with: the
    // composition phase must move zero bytes.
    EXPECT_EQ(serial.traffic.total, 0u) << toString(scheme);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, ChopinEdgeTest,
    ::testing::Values(Scheme::Chopin, Scheme::ChopinCompSched),
    [](const auto &info) {
        std::string name = toString(info.param);
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(ChopinEdge, OpaqueOnlyMatchesSingleGpuImage)
{
    // The cross-scheme oracle restricted to the degenerate trace: CHOPIN
    // over 8 GPUs must composite the opaque-only frame to exactly the
    // single-GPU reference image.
    ScopedJobs restore(4);
    FrameTrace trace = opaqueOnlyTrace();
    SystemConfig one;
    one.num_gpus = 1;
    SystemConfig eight;
    eight.num_gpus = 8;
    FrameResult ref = runScheme(Scheme::SingleGpu, one, trace);
    FrameResult chopin = runScheme(Scheme::Chopin, eight, trace);
    EXPECT_EQ(ref.content_hash, chopin.content_hash);
}

} // namespace
} // namespace chopin

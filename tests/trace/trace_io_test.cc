#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>

#include "trace/generator.hh"
#include "trace/trace_io.hh"

namespace chopin
{
namespace
{

TEST(TraceIo, RoundTripPreservesEverything)
{
    FrameTrace original = generateBenchmark("cod2", 16);
    std::string path = ::testing::TempDir() + "/chopin_trace.bin";
    ASSERT_TRUE(saveTrace(original, path));

    FrameTrace loaded;
    ASSERT_TRUE(loadTrace(loaded, path));
    std::remove(path.c_str());

    EXPECT_EQ(loaded.name, original.name);
    EXPECT_EQ(loaded.full_name, original.full_name);
    EXPECT_EQ(loaded.viewport.width, original.viewport.width);
    EXPECT_EQ(loaded.viewport.height, original.viewport.height);
    EXPECT_EQ(loaded.num_render_targets, original.num_render_targets);
    ASSERT_EQ(loaded.draws.size(), original.draws.size());
    for (std::size_t i = 0; i < original.draws.size(); ++i) {
        const DrawCommand &a = original.draws[i];
        const DrawCommand &b = loaded.draws[i];
        ASSERT_EQ(a.id, b.id);
        ASSERT_TRUE(a.state == b.state);
        ASSERT_EQ(a.alpha_ref, b.alpha_ref);
        ASSERT_EQ(a.backface_cull, b.backface_cull);
        ASSERT_EQ(a.texture_rt, b.texture_rt);
        ASSERT_EQ(a.triangles.size(), b.triangles.size());
        for (std::size_t k = 0; k < a.triangles.size(); ++k) {
            for (int v = 0; v < 3; ++v) {
                ASSERT_EQ(a.triangles[k].v[v].pos.x,
                          b.triangles[k].v[v].pos.x);
                ASSERT_EQ(a.triangles[k].v[v].pos.z,
                          b.triangles[k].v[v].pos.z);
                ASSERT_EQ(a.triangles[k].v[v].color, b.triangles[k].v[v].color);
            }
        }
    }
}

TEST(TraceIo, MissingFileReturnsFalse)
{
    FrameTrace t;
    EXPECT_FALSE(loadTrace(t, "/nonexistent/path/trace.bin"));
}

TEST(TraceIo, RejectsNonTraceFile)
{
    std::string path = ::testing::TempDir() + "/not_a_trace.bin";
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        const char junk[] = "this is not a trace file at all............";
        std::fwrite(junk, 1, sizeof(junk), f);
        std::fclose(f);
    }
    // The load contract (trace_io.hh) is false + diagnostic, never fatal.
    FrameTrace t;
    EXPECT_FALSE(loadTrace(t, path));
    SequenceTrace seq;
    EXPECT_FALSE(loadSequence(seq, path));
    std::remove(path.c_str());
}

TEST(TraceIo, RejectsTruncatedFile)
{
    FrameTrace original = generateBenchmark("wolf", 32);
    std::string path = ::testing::TempDir() + "/chopin_trunc.bin";
    ASSERT_TRUE(saveTrace(original, path));
    // Truncate to half.
    {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        std::fseek(f, 0, SEEK_END);
        long size = std::ftell(f);
        std::fclose(f);
        ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
    }
    FrameTrace t;
    EXPECT_FALSE(loadTrace(t, path));
    SequenceTrace seq;
    EXPECT_FALSE(loadSequence(seq, path));
    std::remove(path.c_str());
}

TEST(TraceIo, RejectsUnsupportedVersionCleanly)
{
    FrameTrace original = generateBenchmark("wolf", 32);
    std::string path = ::testing::TempDir() + "/chopin_badver.bin";
    ASSERT_TRUE(saveTrace(original, path));
    // Patch the version word (bytes 4..7, after the magic) to a future
    // version: the loaders must return false with a diagnostic, not
    // fatal() — callers decide whether that is fatal for them.
    {
        std::FILE *f = std::fopen(path.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::uint32_t future = 99;
        ASSERT_EQ(std::fseek(f, 4, SEEK_SET), 0);
        ASSERT_EQ(std::fwrite(&future, sizeof(future), 1, f), 1u);
        std::fclose(f);
    }
    FrameTrace t;
    EXPECT_FALSE(loadTrace(t, path));
    SequenceTrace seq;
    EXPECT_FALSE(loadSequence(seq, path));
    std::remove(path.c_str());
}

} // namespace
} // namespace chopin

#include <gtest/gtest.h>

#include <set>

#include "trace/generator.hh"

namespace chopin
{
namespace
{

class ProfileTest : public ::testing::TestWithParam<std::string>
{
  protected:
    /** Generate at 1/8 scale: full structure, quick runtime. */
    FrameTrace
    scaled()
    {
        return generateTrace(scaleProfile(benchmarkProfile(GetParam()), 8));
    }
};

TEST_P(ProfileTest, TableIIIStatisticsMatchExactly)
{
    const BenchmarkProfile &p = benchmarkProfile(GetParam());
    FrameTrace t = generateTrace(p);
    EXPECT_EQ(t.draws.size(), static_cast<std::size_t>(p.num_draws));
    EXPECT_EQ(t.totalTriangles(), p.num_triangles);
    EXPECT_EQ(t.viewport.width, p.width);
    EXPECT_EQ(t.viewport.height, p.height);
    EXPECT_EQ(t.name, p.name);
}

TEST_P(ProfileTest, GenerationIsDeterministic)
{
    FrameTrace a = scaled();
    FrameTrace b = scaled();
    ASSERT_EQ(a.draws.size(), b.draws.size());
    for (std::size_t i = 0; i < a.draws.size(); ++i) {
        ASSERT_EQ(a.draws[i].triangles.size(), b.draws[i].triangles.size());
        ASSERT_TRUE(a.draws[i].state == b.draws[i].state);
        for (std::size_t k = 0; k < a.draws[i].triangles.size(); ++k) {
            ASSERT_EQ(a.draws[i].triangles[k].v[0].pos.x,
                      b.draws[i].triangles[k].v[0].pos.x);
            ASSERT_EQ(a.draws[i].triangles[k].v[2].pos.z,
                      b.draws[i].triangles[k].v[2].pos.z);
        }
    }
}

TEST_P(ProfileTest, ContainsAllGroupBoundaryStateChanges)
{
    FrameTrace t = scaled();
    bool rt_switch = false, write_toggle = false, func_change = false,
         blend_change = false;
    for (std::size_t i = 1; i < t.draws.size(); ++i) {
        const RasterState &prev = t.draws[i - 1].state;
        const RasterState &cur = t.draws[i].state;
        rt_switch |= prev.render_target != cur.render_target;
        write_toggle |= prev.depth_write != cur.depth_write;
        func_change |= prev.depth_func != cur.depth_func;
        blend_change |= prev.blend_op != cur.blend_op;
    }
    EXPECT_TRUE(rt_switch) << "event 2 never occurs";
    EXPECT_TRUE(write_toggle) << "event 3 never occurs";
    EXPECT_TRUE(func_change) << "event 4 never occurs";
    EXPECT_TRUE(blend_change) << "event 5 never occurs";
}

TEST_P(ProfileTest, TransparentDrawsAreBackToFrontAndLast)
{
    FrameTrace t = scaled();
    bool seen_transparent = false;
    float last_over_depth = 2.0f;
    for (const DrawCommand &d : t.draws) {
        if (d.texture_rt >= 0)
            continue; // blended RT composites legitimately sit mid-frame
        if (isTransparent(d.state.blend_op)) {
            seen_transparent = true;
            EXPECT_FALSE(d.state.depth_write);
            if (d.state.blend_op == BlendOp::Over &&
                !d.triangles.empty()) {
                float depth = d.triangles[0].v[0].pos.z;
                EXPECT_LE(depth, last_over_depth + 0.05f)
                    << "over-blended draws must be roughly back-to-front";
                last_over_depth = depth;
            }
        } else if (d.state.render_target == 0) {
            EXPECT_FALSE(seen_transparent)
                << "opaque main-target draw after the transparent tail";
        }
    }
    EXPECT_TRUE(seen_transparent);
}

TEST_P(ProfileTest, EveryDrawHasTriangles)
{
    FrameTrace t = scaled();
    for (const DrawCommand &d : t.draws)
        EXPECT_GE(d.triangles.size(), 1u);
}

TEST_P(ProfileTest, DrawSizesAreHeavyTailed)
{
    FrameTrace t = scaled();
    std::uint64_t max_tris = 0;
    for (const DrawCommand &d : t.draws)
        max_tris = std::max<std::uint64_t>(max_tris, d.triangles.size());
    double mean = static_cast<double>(t.totalTriangles()) /
                  static_cast<double>(t.draws.size());
    EXPECT_GT(static_cast<double>(max_tris), 4.0 * mean);
}

TEST_P(ProfileTest, UsesMultipleRenderTargets)
{
    FrameTrace t = scaled();
    std::set<std::uint32_t> rts;
    for (const DrawCommand &d : t.draws)
        rts.insert(d.state.render_target);
    EXPECT_EQ(rts.size(), t.num_render_targets);
    EXPECT_GE(t.num_render_targets, 2u);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ProfileTest,
                         ::testing::Values("cod2", "cry", "grid", "mirror",
                                           "nfs", "stal", "ut3", "wolf"));

TEST(Profiles, AllEightExist)
{
    EXPECT_EQ(allBenchmarkProfiles().size(), 8u);
}

TEST(Profiles, UnknownNameIsFatal)
{
    EXPECT_EXIT(benchmarkProfile("doom"), ::testing::ExitedWithCode(1),
                "unknown benchmark");
}

TEST(Profiles, ScalingKeepsStructureFeasible)
{
    for (int divisor : {1, 2, 4, 16, 64, 1000}) {
        BenchmarkProfile p =
            scaleProfile(benchmarkProfile("cod2"), divisor);
        FrameTrace t = generateTrace(p); // must not fatal/panic
        EXPECT_EQ(t.totalTriangles(), p.num_triangles);
    }
}

TEST(Generator, DifferentSeedsGiveDifferentGeometry)
{
    BenchmarkProfile p = scaleProfile(benchmarkProfile("wolf"), 8);
    FrameTrace a = generateTrace(p);
    p.seed += 1;
    FrameTrace b = generateTrace(p);
    ASSERT_EQ(a.draws.size(), b.draws.size());
    bool differs = false;
    for (std::size_t i = 0; i < a.draws.size() && !differs; ++i)
        differs = a.draws[i].triangles.size() != b.draws[i].triangles.size();
    EXPECT_TRUE(differs);
}

} // namespace
} // namespace chopin

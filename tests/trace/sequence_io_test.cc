#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "trace/generator.hh"
#include "trace/trace_io.hh"

namespace chopin
{
namespace
{

SequenceParams
smallParams(std::uint32_t frames = 4)
{
    SequenceParams p;
    p.num_frames = frames;
    p.path = CameraPath::Orbit;
    return p;
}

SequenceTrace
smallSequence(std::uint32_t frames = 4)
{
    return generateBenchmarkSequence("wolf", 32, smallParams(frames));
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

TEST(SequenceIo, RoundTripPreservesFingerprint)
{
    SequenceTrace original = smallSequence();
    std::string path = ::testing::TempDir() + "/chopin_seq.bin";
    ASSERT_TRUE(saveSequence(original, path));

    SequenceTrace loaded;
    ASSERT_TRUE(loadSequence(loaded, path));
    std::remove(path.c_str());

    EXPECT_EQ(loaded.frameCount(), original.frameCount());
    EXPECT_EQ(loaded.path, original.path);
    EXPECT_EQ(loaded.knobs.camera_hold, original.knobs.camera_hold);
    EXPECT_EQ(sequenceFingerprint(loaded), sequenceFingerprint(original));
    EXPECT_EQ(traceFingerprint(loaded.base),
              traceFingerprint(original.base));
    // Materialized frames are identical too (fingerprint covers the keys).
    for (std::size_t f = 0; f < original.frameCount(); ++f)
        EXPECT_EQ(traceFingerprint(loaded.frame(f)),
                  traceFingerprint(original.frame(f)));
}

TEST(SequenceIo, SaveBytesAreDeterministic)
{
    // Trace bytes must be bit-identical across regenerations (and hence
    // across --jobs values: generation and serialization are serial).
    std::string p1 = ::testing::TempDir() + "/chopin_seq_a.bin";
    std::string p2 = ::testing::TempDir() + "/chopin_seq_b.bin";
    ASSERT_TRUE(saveSequence(smallSequence(), p1));
    ASSERT_TRUE(saveSequence(smallSequence(), p2));
    EXPECT_EQ(fileBytes(p1), fileBytes(p2));
    std::remove(p1.c_str());
    std::remove(p2.c_str());
}

TEST(SequenceIo, UpgraderLoadsSingleFrameFileAsSequence)
{
    FrameTrace frame = generateBenchmark("wolf", 32);
    std::string path = ::testing::TempDir() + "/chopin_v3.bin";
    ASSERT_TRUE(saveTrace(frame, path));

    SequenceTrace upgraded;
    ASSERT_TRUE(loadSequence(upgraded, path));
    std::remove(path.c_str());

    ASSERT_EQ(upgraded.frameCount(), 1u);
    EXPECT_EQ(upgraded.path, CameraPath::Static);
    EXPECT_TRUE(upgraded.frames[0].transforms.empty());
    // The upgraded frame is the original frame, bit for bit.
    EXPECT_EQ(traceFingerprint(upgraded.frame(0)),
              traceFingerprint(frame));
}

TEST(SequenceIo, UpgradedFingerprintMatchesNativeEquivalent)
{
    // A v3 file upgraded through loadSequence() must fingerprint
    // identically to the natively authored v4 equivalent, so sweep cache
    // keys never depend on which format a workload happened to ship in.
    FrameTrace frame = generateBenchmark("wolf", 32);
    std::string v3_path = ::testing::TempDir() + "/chopin_up_v3.bin";
    std::string v4_path = ::testing::TempDir() + "/chopin_up_v4.bin";
    ASSERT_TRUE(saveTrace(frame, v3_path));
    ASSERT_TRUE(saveSequence(sequenceFromFrame(frame), v4_path));

    SequenceTrace upgraded, native;
    ASSERT_TRUE(loadSequence(upgraded, v3_path));
    ASSERT_TRUE(loadSequence(native, v4_path));
    std::remove(v3_path.c_str());
    std::remove(v4_path.c_str());

    EXPECT_EQ(sequenceFingerprint(upgraded), sequenceFingerprint(native));
}

TEST(SequenceIo, LoadTraceAcceptsOneFrameSequenceOnly)
{
    SequenceTrace one = generateBenchmarkSequence("wolf", 32,
                                                  smallParams(1));
    SequenceTrace many = smallSequence(4);
    std::string p_one = ::testing::TempDir() + "/chopin_seq1.bin";
    std::string p_many = ::testing::TempDir() + "/chopin_seqN.bin";
    ASSERT_TRUE(saveSequence(one, p_one));
    ASSERT_TRUE(saveSequence(many, p_many));

    FrameTrace t;
    ASSERT_TRUE(loadTrace(t, p_one));
    EXPECT_EQ(traceFingerprint(t), traceFingerprint(one.frame(0)));
    // Collapsing a longer stream to one frame would silently change the
    // workload, so loadTrace refuses (false + diagnostic, not fatal).
    EXPECT_FALSE(loadTrace(t, p_many));
    std::remove(p_one.c_str());
    std::remove(p_many.c_str());
}

TEST(SequenceIo, EmptySequenceIsNotRepresentable)
{
    SequenceTrace empty;
    EXPECT_FALSE(saveSequence(empty,
                              ::testing::TempDir() + "/chopin_empty.bin"));
}

TEST(SequenceIo, FingerprintCoversEveryStreamField)
{
    // Perturb every sequence-level field and assert the fingerprint moves:
    // a field added without fingerprint coverage would alias sweep cache
    // entries across genuinely different workloads.
    const SequenceTrace base = smallSequence();
    const std::uint64_t fp = sequenceFingerprint(base);

    { // camera keyframe
        SequenceTrace s = base;
        s.frames[1].view_proj.m[0][0] += 0.25f;
        EXPECT_NE(sequenceFingerprint(s), fp);
    }
    { // per-frame object transform (value)
        SequenceTrace s = base;
        ASSERT_FALSE(s.frames[1].transforms.empty())
            << "generated sequence should carry animation channels";
        s.frames[1].transforms[0].second.m[3][0] += 0.1f;
        EXPECT_NE(sequenceFingerprint(s), fp);
    }
    { // per-frame object transform (target draw)
        SequenceTrace s = base;
        s.frames[1].transforms[0].first += 1;
        EXPECT_NE(sequenceFingerprint(s), fp);
    }
    { // coherence knobs, one by one
        SequenceTrace s = base;
        s.knobs.camera_step *= 2.0f;
        EXPECT_NE(sequenceFingerprint(s), fp);
        s = base;
        s.knobs.object_motion *= 2.0f;
        EXPECT_NE(sequenceFingerprint(s), fp);
        s = base;
        s.knobs.animated_frac *= 0.5f;
        EXPECT_NE(sequenceFingerprint(s), fp);
        s = base;
        s.knobs.camera_hold += 1;
        EXPECT_NE(sequenceFingerprint(s), fp);
    }
    { // frame count
        SequenceTrace s = base;
        s.frames.push_back(s.frames.back());
        EXPECT_NE(sequenceFingerprint(s), fp);
    }
    { // camera path enum
        SequenceTrace s = base;
        s.path = CameraPath::Dolly;
        EXPECT_NE(sequenceFingerprint(s), fp);
    }
    { // base trace content flows through
        SequenceTrace s = base;
        s.base.draws[0].model.m[3][1] += 0.1f;
        EXPECT_NE(sequenceFingerprint(s), fp);
    }
}

TEST(SequenceIo, MaterializeReusesTriangleStorage)
{
    SequenceTrace seq = smallSequence();
    FrameTrace scratch;
    seq.materializeFrame(0, scratch);
    ASSERT_FALSE(scratch.draws.empty());
    const Triangle *storage = scratch.draws[0].triangles.data();
    // Later frames swap matrices on the shared geometry without
    // re-copying or reallocating the triangle storage.
    seq.materializeFrame(1, scratch);
    EXPECT_EQ(scratch.draws[0].triangles.data(), storage);
    EXPECT_EQ(traceFingerprint(scratch), traceFingerprint(seq.frame(1)));
}

TEST(SequenceIo, GeneratedFramesActuallyAnimate)
{
    SequenceTrace seq = smallSequence();
    // Consecutive frames differ (camera and objects move)...
    EXPECT_NE(traceFingerprint(seq.frame(0)),
              traceFingerprint(seq.frame(1)));
    // ...but share the base geometry: only matrices change.
    FrameTrace a = seq.frame(0), b = seq.frame(1);
    ASSERT_EQ(a.draws.size(), b.draws.size());
    for (std::size_t i = 0; i < a.draws.size(); ++i)
        EXPECT_EQ(a.draws[i].triangles.size(), b.draws[i].triangles.size());
}

} // namespace
} // namespace chopin

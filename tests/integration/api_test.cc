#include <gtest/gtest.h>

#include "core/chopin.hh"

namespace chopin
{
namespace
{

TEST(Api, VersionIsExposed)
{
    EXPECT_GE(versionMajor, 1);
    EXPECT_GE(versionMinor, 0);
}

TEST(Api, RunMainComparisonCoversFig13Schemes)
{
    SystemConfig cfg;
    cfg.num_gpus = 4;
    FrameTrace trace = generateBenchmark("wolf", 16);
    std::vector<FrameResult> results = runMainComparison(cfg, trace);
    ASSERT_EQ(results.size(), 6u);
    EXPECT_EQ(results[0].scheme, Scheme::Duplication);
    EXPECT_EQ(results[1].scheme, Scheme::Gpupd);
    EXPECT_EQ(results[2].scheme, Scheme::GpupdIdeal);
    EXPECT_EQ(results[3].scheme, Scheme::Chopin);
    EXPECT_EQ(results[4].scheme, Scheme::ChopinCompSched);
    EXPECT_EQ(results[5].scheme, Scheme::ChopinIdeal);
    for (const FrameResult &r : results) {
        EXPECT_GT(r.cycles, 0u);
        EXPECT_EQ(r.num_gpus, 4u);
        EXPECT_EQ(r.image.width(), trace.viewport.width);
    }
}

TEST(Api, SpeedupOver)
{
    FrameResult base, fast;
    base.cycles = 1000;
    fast.cycles = 500;
    EXPECT_DOUBLE_EQ(speedupOver(base, fast), 2.0);
}

TEST(Api, SchemeNamesMatchThePaper)
{
    EXPECT_EQ(toString(Scheme::Duplication), "Duplication");
    EXPECT_EQ(toString(Scheme::Gpupd), "GPUpd");
    EXPECT_EQ(toString(Scheme::GpupdIdeal), "IdealGPUpd");
    EXPECT_EQ(toString(Scheme::Chopin), "CHOPIN");
    EXPECT_EQ(toString(Scheme::ChopinCompSched), "CHOPIN+CompSched");
    EXPECT_EQ(toString(Scheme::ChopinIdeal), "IdealCHOPIN");
    EXPECT_EQ(toString(Scheme::ChopinRoundRobin), "CHOPIN_Round_Robin");
}

TEST(Api, ProgrammaticSceneConstruction)
{
    // Users can build traces directly, without the generator.
    FrameTrace trace;
    trace.name = "custom";
    trace.viewport = {128, 128};
    DrawCommand cmd;
    cmd.id = 0;
    Triangle t;
    t.v[0] = {{-0.5f, -0.5f, 0.0f}, {1, 0, 0, 1}};
    t.v[1] = {{0.0f, 0.5f, 0.0f}, {0, 1, 0, 1}};
    t.v[2] = {{0.5f, -0.5f, 0.0f}, {0, 0, 1, 1}};
    cmd.triangles.push_back(t);
    trace.draws.push_back(cmd);

    SystemConfig cfg;
    cfg.num_gpus = 2;
    cfg.group_threshold = 0; // force distribution even for one triangle
    FrameResult single = runSingleGpu(cfg, trace);
    FrameResult chopin = runScheme(Scheme::ChopinCompSched, cfg, trace);
    EXPECT_EQ(compareImages(single.image, chopin.image).differing_pixels,
              0);
    EXPECT_GT(single.totals.frags_written, 0u);
}

} // namespace
} // namespace chopin

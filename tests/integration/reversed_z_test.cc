/**
 * @file
 * Reversed-Z rendering: a frame whose depth buffer clears to 0 and whose
 * draws use GreaterEqual comparisons (a common modern-engine convention).
 * Exercises the prefersSmaller(func) == false paths of the composition
 * operators, CHOPIN's sub-image depth-clear selection, and the oracle.
 */

#include <gtest/gtest.h>

#include "sfr/schemes.hh"
#include "util/rng.hh"

namespace chopin
{
namespace
{

FrameTrace
reversedZTrace()
{
    FrameTrace t;
    t.name = "reversed-z";
    t.viewport = {320, 256};
    t.clear_depth = 0.0f; // reversed-Z clear
    Rng rng(4242);

    for (int d = 0; d < 60; ++d) {
        DrawCommand cmd;
        cmd.id = static_cast<DrawId>(d);
        cmd.state.depth_func = DepthFunc::GreaterEqual;
        cmd.state.depth_test = true;
        cmd.state.depth_write = true;
        cmd.backface_cull = false;
        float cx = rng.nextFloat(-0.8f, 0.8f);
        float cy = rng.nextFloat(-0.8f, 0.8f);
        // Reversed-Z: larger depth = closer.
        float z = 2.0f * rng.nextFloat(0.05f, 0.95f) - 1.0f;
        for (int i = 0; i < 40; ++i) {
            Triangle tri;
            float px = cx + rng.nextFloat(-0.15f, 0.15f);
            float py = cy + rng.nextFloat(-0.15f, 0.15f);
            float s = rng.nextFloat(0.02f, 0.08f);
            Color c{rng.nextFloat(), rng.nextFloat(), rng.nextFloat(), 1};
            tri.v[0] = {{px, py, z}, c};
            tri.v[1] = {{px + s, py, z}, c};
            tri.v[2] = {{px, py + s, z}, c};
            cmd.triangles.push_back(tri);
        }
        t.draws.push_back(std::move(cmd));
    }
    return t;
}

TEST(ReversedZ, AllSchemesMatchTheReference)
{
    FrameTrace trace = reversedZTrace();
    SystemConfig cfg;
    cfg.num_gpus = 8;
    cfg.group_threshold = 1; // force distribution of this small frame
    FrameResult reference = runSingleGpu(cfg, trace);

    // The distributed path must have been taken for the test to mean
    // anything.
    FrameResult chopin = runScheme(Scheme::ChopinCompSched, cfg, trace);
    EXPECT_GT(chopin.groups_distributed, 0u);

    for (Scheme s : {Scheme::Duplication, Scheme::Gpupd, Scheme::Chopin,
                     Scheme::ChopinCompSched, Scheme::ChopinIdeal}) {
        FrameResult r = runScheme(s, cfg, trace);
        ImageDiff diff = compareImages(reference.image, r.image);
        EXPECT_EQ(diff.differing_pixels, 0) << toString(s);
    }
}

TEST(ReversedZ, CloserMeansLarger)
{
    FrameTrace trace = reversedZTrace();
    SystemConfig cfg;
    FrameResult r = runSingleGpu(cfg, trace);
    // Sanity: something rendered and the depth semantics did not cull
    // everything (GreaterEqual against a 0-cleared buffer passes).
    EXPECT_GT(r.totals.frags_written, 0u);
    EXPECT_GT(r.totals.frags_early_pass, r.totals.frags_early_fail / 100);
}

} // namespace
} // namespace chopin

/**
 * @file
 * Timing-model sanity and calibration locks: the qualitative relationships
 * the paper's evaluation depends on must hold on the generated workloads.
 */

#include <gtest/gtest.h>

#include "sfr/schemes.hh"
#include "trace/generator.hh"

namespace chopin
{
namespace
{

/** 1/4-scale traces: full structure, moderate runtime. */
const FrameTrace &
trace4(const std::string &bench)
{
    static std::map<std::string, FrameTrace> cache;
    auto it = cache.find(bench);
    if (it == cache.end())
        it = cache.emplace(bench, generateBenchmark(bench, 4)).first;
    return it->second;
}

class CalibrationTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CalibrationTest, SingleGpuGeometryFractionMatchesFig2)
{
    SystemConfig cfg;
    FrameResult r = runSingleGpu(cfg, trace4(GetParam()));
    // The paper's Fig. 2 shows roughly 15-35% of pipeline cycles in
    // geometry processing on a single GPU; this locks the calibration.
    EXPECT_GT(r.geometryFraction(), 0.10) << GetParam();
    EXPECT_LT(r.geometryFraction(), 0.40) << GetParam();
}

TEST_P(CalibrationTest, DuplicationGeometryFractionGrowsWithGpuCount)
{
    double prev = 0.0;
    for (unsigned gpus : {1u, 2u, 4u, 8u}) {
        SystemConfig cfg;
        cfg.num_gpus = gpus;
        FrameResult r = runDuplication(cfg, trace4(GetParam()));
        EXPECT_GT(r.geometryFraction(), prev)
            << GetParam() << " at " << gpus << " GPUs";
        prev = r.geometryFraction();
    }
    EXPECT_GT(prev, 0.45) << "geometry must dominate duplication at 8 GPUs";
}

TEST_P(CalibrationTest, ChopinBeatsDuplicationAt8Gpus)
{
    SystemConfig cfg;
    cfg.num_gpus = 8;
    const FrameTrace &t = trace4(GetParam());
    FrameResult dup = runDuplication(cfg, t);
    FrameResult chopin = runScheme(Scheme::ChopinCompSched, cfg, t);
    EXPECT_LT(chopin.cycles, dup.cycles) << GetParam();
}

TEST_P(CalibrationTest, SchemeOrderingsHold)
{
    SystemConfig cfg;
    cfg.num_gpus = 8;
    const FrameTrace &t = trace4(GetParam());
    FrameResult plain = runChopin(cfg, t, {DrawPolicy::FewestRemaining,
                                           false, false});
    FrameResult sched = runChopin(cfg, t, {DrawPolicy::FewestRemaining,
                                           true, false});
    FrameResult ideal = runChopin(cfg, t, {DrawPolicy::FewestRemaining,
                                           true, true});
    // The composition scheduler pays off at full trace sizes (Fig. 13:
    // 1.27x vs 0.99x gmean); at this test's 1/4-scale miniatures its
    // session pairing can trail naive direct-send by a whisker on some
    // apps, so the lock allows a small tolerance. Ideal links never hurt.
    EXPECT_LE(static_cast<double>(sched.cycles),
              1.04 * static_cast<double>(plain.cycles))
        << GetParam();
    EXPECT_LE(ideal.cycles, sched.cycles) << GetParam();

    FrameResult gpupd = runGpupd(cfg, t, false);
    FrameResult gpupd_ideal = runGpupd(cfg, t, true);
    EXPECT_LE(gpupd_ideal.cycles, gpupd.cycles) << GetParam();
}

TEST_P(CalibrationTest, ExtraFragmentWorkIsBounded)
{
    SystemConfig cfg;
    cfg.num_gpus = 8;
    const FrameTrace &t = trace4(GetParam());
    FrameResult dup = runDuplication(cfg, t);
    FrameResult chopin = runScheme(Scheme::ChopinCompSched, cfg, t);
    std::uint64_t dup_pass =
        dup.totals.frags_early_pass + dup.totals.frags_late_pass;
    std::uint64_t ch_pass =
        chopin.totals.frags_early_pass + chopin.totals.frags_late_pass;
    // CHOPIN loses some cross-GPU early-z culling (Fig. 15): more
    // fragments pass, but the increase stays bounded.
    EXPECT_GE(ch_pass, dup_pass) << GetParam();
    EXPECT_LT(static_cast<double>(ch_pass),
              2.0 * static_cast<double>(dup_pass))
        << GetParam();
}

// grid is excluded from the beats-duplication lock: its many large
// triangles give it the paper's outsized composition traffic (Fig. 17),
// and in this model that pushes its CHOPIN speedup slightly below 1
// (see EXPERIMENTS.md); the remaining workloads must all win.
INSTANTIATE_TEST_SUITE_P(Benchmarks, CalibrationTest,
                         ::testing::Values("cod2", "stal", "ut3", "wolf"));

TEST(TimingSanity, BreakdownSumsToFrameCycles)
{
    SystemConfig cfg;
    cfg.num_gpus = 8;
    for (Scheme s : {Scheme::Duplication, Scheme::Gpupd,
                     Scheme::ChopinCompSched}) {
        FrameResult r = runScheme(s, cfg, trace4("wolf"));
        EXPECT_EQ(r.breakdown.total(), r.cycles) << toString(s);
    }
}

TEST(TimingSanity, SingleGpuHasNoCommunication)
{
    SystemConfig cfg;
    FrameResult r = runSingleGpu(cfg, trace4("wolf"));
    EXPECT_EQ(r.traffic.total, 0u);
    EXPECT_EQ(r.breakdown.sync, 0u);
    EXPECT_EQ(r.breakdown.composition, 0u);
}

TEST(TimingSanity, ChopinScalesWithGpuCount)
{
    const FrameTrace &t = trace4("ut3");
    Tick prev = ~Tick(0);
    for (unsigned gpus : {1u, 2u, 4u, 8u}) {
        SystemConfig cfg;
        cfg.num_gpus = gpus;
        FrameResult r = runScheme(Scheme::ChopinCompSched, cfg, t);
        EXPECT_LT(r.cycles, prev) << gpus << " GPUs";
        prev = r.cycles;
    }
}

TEST(TimingSanity, MoreBandwidthNeverHurtsChopin)
{
    const FrameTrace &t = trace4("grid");
    Tick prev = ~Tick(0);
    for (double gbps : {16.0, 32.0, 64.0, 128.0}) {
        SystemConfig cfg;
        cfg.num_gpus = 8;
        cfg.link.bytes_per_cycle = gbps;
        FrameResult r = runScheme(Scheme::ChopinCompSched, cfg, t);
        EXPECT_LE(r.cycles, prev) << gbps << " GB/s";
        prev = r.cycles;
    }
}

TEST(TimingSanity, LatencyHurtsGpupdMoreThanChopin)
{
    const FrameTrace &t = trace4("ut3");
    auto run = [&](Scheme s, Tick latency) {
        SystemConfig cfg;
        cfg.num_gpus = 8;
        cfg.link.latency = latency;
        return runScheme(s, cfg, t).cycles;
    };
    double gpupd_slowdown =
        static_cast<double>(run(Scheme::Gpupd, 400)) /
        static_cast<double>(run(Scheme::Gpupd, 100));
    double chopin_slowdown =
        static_cast<double>(run(Scheme::ChopinCompSched, 400)) /
        static_cast<double>(run(Scheme::ChopinCompSched, 100));
    EXPECT_GT(gpupd_slowdown, chopin_slowdown);
}

TEST(TimingSanity, CullRetentionDegradesChopin)
{
    const FrameTrace &t = trace4("ut3");
    SystemConfig cfg;
    cfg.num_gpus = 8;
    FrameResult base = runScheme(Scheme::ChopinCompSched, cfg, t);
    cfg.cull_retention = 0.4;
    FrameResult retained = runScheme(Scheme::ChopinCompSched, cfg, t);
    EXPECT_GT(retained.cycles, base.cycles);
    EXPECT_GT(retained.retained_culled, 0u);
}

TEST(TimingSanity, RoundRobinLoadImbalanceCostsCycles)
{
    const FrameTrace &t = trace4("stal"); // most heavy-tailed draw sizes
    SystemConfig cfg;
    cfg.num_gpus = 8;
    FrameResult rr = runScheme(Scheme::ChopinRoundRobin, cfg, t);
    FrameResult balanced = runScheme(Scheme::Chopin, cfg, t);
    EXPECT_LT(balanced.cycles, rr.cycles);
}

TEST(TimingSanity, CompositionTrafficIsReported)
{
    SystemConfig cfg;
    cfg.num_gpus = 8;
    FrameResult r = runScheme(Scheme::ChopinCompSched, cfg, trace4("grid"));
    EXPECT_GT(r.traffic.ofClass(TrafficClass::Composition), 0u);
    EXPECT_GT(r.groups_distributed, 0u);
    EXPECT_GT(r.tris_distributed, 0u);
    EXPECT_GE(r.groups_total, r.groups_distributed);
}

TEST(TimingSanity, ThresholdExtremesBehaveLikeTheLimits)
{
    const FrameTrace &t = trace4("wolf");
    SystemConfig cfg;
    cfg.num_gpus = 8;
    // An infinite threshold turns CHOPIN into pure duplication.
    cfg.group_threshold = ~0ull;
    FrameResult as_dup = runScheme(Scheme::ChopinCompSched, cfg, t);
    EXPECT_EQ(as_dup.groups_distributed, 0u);
    EXPECT_EQ(as_dup.traffic.ofClass(TrafficClass::Composition), 0u);

    FrameResult dup = runDuplication(cfg, t);
    // Same work modulo the scheduler bookkeeping.
    EXPECT_NEAR(static_cast<double>(as_dup.cycles),
                static_cast<double>(dup.cycles),
                0.02 * static_cast<double>(dup.cycles));
}

} // namespace
} // namespace chopin

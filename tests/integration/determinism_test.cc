/**
 * @file
 * Determinism: the whole stack — generator, schedulers, event queue,
 * interconnect — is seeded and ordered, so identical inputs must produce
 * bit-identical results. (CONTRIBUTING.md makes this a standing rule; this
 * suite is its enforcement.)
 */

#include <gtest/gtest.h>

#include "sfr/schemes.hh"
#include "trace/generator.hh"

namespace chopin
{
namespace
{

class DeterminismTest : public ::testing::TestWithParam<Scheme>
{
};

TEST_P(DeterminismTest, RepeatedRunsAreBitIdentical)
{
    Scheme scheme = GetParam();
    FrameTrace trace = generateBenchmark("nfs", 16);
    SystemConfig cfg;
    cfg.num_gpus = 8;

    FrameResult a = runScheme(scheme, cfg, trace);
    FrameResult b = runScheme(scheme, cfg, trace);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.traffic.total, b.traffic.total);
    EXPECT_EQ(a.traffic.messages, b.traffic.messages);
    EXPECT_EQ(a.breakdown.composition, b.breakdown.composition);
    EXPECT_EQ(a.totals.frags_written, b.totals.frags_written);
    EXPECT_EQ(compareImages(a.image, b.image).differing_pixels, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, DeterminismTest,
    ::testing::Values(Scheme::SingleGpu, Scheme::Duplication, Scheme::Gpupd,
                      Scheme::Chopin, Scheme::ChopinCompSched),
    [](const auto &info) {
        std::string name = toString(info.param);
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(Determinism, RegeneratedTraceIsByteStable)
{
    // Two independent generator invocations of the same profile agree on
    // every float of every vertex (PCG32 + local distributions only).
    FrameTrace a = generateBenchmark("grid", 8);
    FrameTrace b = generateBenchmark("grid", 8);
    ASSERT_EQ(a.draws.size(), b.draws.size());
    for (std::size_t d = 0; d < a.draws.size(); ++d) {
        ASSERT_EQ(a.draws[d].triangles.size(), b.draws[d].triangles.size());
        for (std::size_t t = 0; t < a.draws[d].triangles.size(); ++t)
            for (int v = 0; v < 3; ++v) {
                ASSERT_EQ(a.draws[d].triangles[t].v[v].pos.x,
                          b.draws[d].triangles[t].v[v].pos.x);
                ASSERT_EQ(a.draws[d].triangles[t].v[v].pos.y,
                          b.draws[d].triangles[t].v[v].pos.y);
                ASSERT_EQ(a.draws[d].triangles[t].v[v].pos.z,
                          b.draws[d].triangles[t].v[v].pos.z);
            }
    }
}

} // namespace
} // namespace chopin

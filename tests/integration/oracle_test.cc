/**
 * @file
 * The image-equality oracle: every multi-GPU SFR scheme must produce the
 * same frame as in-order single-GPU rendering, for every benchmark trace.
 * Opaque content must match bit-exactly (the composition operators are
 * exact selections); transparent chains may differ by float-rounding of the
 * associativity rewrite, bounded by a small tolerance.
 */

#include <gtest/gtest.h>

#include <map>

#include "sfr/schemes.hh"
#include "trace/generator.hh"

namespace chopin
{
namespace
{

/** Shared trace/reference cache so each benchmark renders its oracle once. */
struct OracleCache
{
    static OracleCache &
    instance()
    {
        static OracleCache cache;
        return cache;
    }

    const FrameTrace &
    trace(const std::string &bench)
    {
        auto it = traces.find(bench);
        if (it == traces.end())
            it = traces.emplace(bench, generateBenchmark(bench, 16)).first;
        return it->second;
    }

    const Image &
    reference(const std::string &bench)
    {
        auto it = refs.find(bench);
        if (it == refs.end()) {
            SystemConfig cfg;
            it = refs.emplace(bench,
                              runSingleGpu(cfg, trace(bench)).image)
                     .first;
        }
        return it->second;
    }

    std::map<std::string, FrameTrace> traces;
    std::map<std::string, Image> refs;
};

struct OracleCase
{
    const char *bench;
    Scheme scheme;
    unsigned gpus;
};

std::string
caseName(const ::testing::TestParamInfo<OracleCase> &info)
{
    std::string name = std::string(info.param.bench) + "_" +
                       toString(info.param.scheme) + "_" +
                       std::to_string(info.param.gpus) + "gpu";
    for (char &c : name)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return name;
}

class SchemeOracle : public ::testing::TestWithParam<OracleCase>
{
};

TEST_P(SchemeOracle, ImageMatchesSingleGpuReference)
{
    const OracleCase &c = GetParam();
    OracleCache &cache = OracleCache::instance();
    SystemConfig cfg;
    cfg.num_gpus = c.gpus;
    FrameResult r = runScheme(c.scheme, cfg, cache.trace(c.bench));
    // Transparent chains are re-associated across GPUs; allow float noise.
    ImageDiff diff = compareImages(cache.reference(c.bench), r.image, 2e-4f);
    EXPECT_EQ(diff.differing_pixels, 0)
        << diff.differing_pixels << " pixels differ (max "
        << diff.max_abs_diff << ", first at " << diff.first_x << ","
        << diff.first_y << ")";
}

std::vector<OracleCase>
allCases()
{
    std::vector<OracleCase> cases;
    const char *benches[] = {"cod2", "cry", "grid", "mirror",
                             "nfs",  "stal", "ut3",  "wolf"};
    // Every benchmark under the paper's 8-GPU setup for the two most
    // complex schemes; ut3/wolf additionally sweep GPU counts (including an
    // odd count) and the remaining schemes.
    for (const char *b : benches) {
        cases.push_back({b, Scheme::Duplication, 8});
        cases.push_back({b, Scheme::Gpupd, 8});
        cases.push_back({b, Scheme::ChopinCompSched, 8});
    }
    for (const char *b : {"ut3", "wolf"}) {
        for (unsigned gpus : {2u, 3u, 8u}) {
            cases.push_back({b, Scheme::Chopin, gpus});
            cases.push_back({b, Scheme::ChopinRoundRobin, gpus});
            cases.push_back({b, Scheme::GpupdIdeal, gpus});
            cases.push_back({b, Scheme::ChopinIdeal, gpus});
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeOracle,
                         ::testing::ValuesIn(allCases()), caseName);

TEST(OracleKnobs, CullRetentionIsTimingOnly)
{
    // Fig. 16's knob must never change the image.
    OracleCache &cache = OracleCache::instance();
    SystemConfig cfg;
    cfg.num_gpus = 8;
    cfg.cull_retention = 0.4;
    FrameResult r =
        runScheme(Scheme::ChopinCompSched, cfg, cache.trace("ut3"));
    EXPECT_GT(r.retained_culled, 0u);
    ImageDiff diff = compareImages(cache.reference("ut3"), r.image, 2e-4f);
    EXPECT_EQ(diff.differing_pixels, 0);
}

TEST(OracleKnobs, GroupThresholdDoesNotChangeTheImage)
{
    OracleCache &cache = OracleCache::instance();
    for (std::uint64_t threshold : {256ull, 16384ull, ~0ull}) {
        SystemConfig cfg;
        cfg.num_gpus = 8;
        cfg.group_threshold = threshold;
        FrameResult r =
            runScheme(Scheme::ChopinCompSched, cfg, cache.trace("wolf"));
        ImageDiff diff =
            compareImages(cache.reference("wolf"), r.image, 2e-4f);
        EXPECT_EQ(diff.differing_pixels, 0) << "threshold " << threshold;
    }
}

TEST(OracleKnobs, SchedulerUpdateIntervalDoesNotChangeTheImage)
{
    OracleCache &cache = OracleCache::instance();
    for (std::uint64_t interval : {1ull, 512ull, 1024ull}) {
        SystemConfig cfg;
        cfg.num_gpus = 8;
        cfg.sched_update_tris = interval;
        FrameResult r =
            runScheme(Scheme::Chopin, cfg, cache.trace("wolf"));
        ImageDiff diff =
            compareImages(cache.reference("wolf"), r.image, 2e-4f);
        EXPECT_EQ(diff.differing_pixels, 0) << "interval " << interval;
    }
}

} // namespace
} // namespace chopin

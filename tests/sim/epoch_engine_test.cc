/**
 * @file
 * ParallelEngine / PartitionedNet: the epoch-parallel engine's determinism
 * contract (DESIGN.md §12). Synthetic workloads with cross-partition
 * traffic must produce bit-identical event sequences, clocks and
 * interconnect state at any host --jobs value; mailbox commits must follow
 * the canonical (tick, src, seq) order; the lookahead window's exclusive
 * bound must admit effects landing exactly at the epoch end; and the
 * jobs == 1 path must never enter the barrier machinery.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/interconnect.hh"
#include "net/partitioned_net.hh"
#include "sim/parallel_engine.hh"
#include "util/check.hh"
#include "util/thread_pool.hh"
#include "util/types.hh"

namespace chopin
{
namespace
{

/** Restore a deterministic single-job pool when a test exits. */
struct ScopedJobs
{
    explicit ScopedJobs(unsigned jobs) { setGlobalJobs(jobs); }
    ~ScopedJobs() { setGlobalJobs(1); }
};

/** One executed event, as observed by its own partition. */
struct LogEntry
{
    PartitionId part;
    Tick when;
    int tag;

    bool
    operator==(const LogEntry &o) const
    {
        return part == o.part && when == o.when && tag == o.tag;
    }
};

/**
 * Token-ring workload: each partition seeds a token at a staggered tick;
 * every hop does local work (two self-posts) and forwards the token to the
 * next partition one lookahead later, for `hops` hops. Returns the
 * concatenated per-partition logs (partition order, then execution order
 * within a partition — a pure function of simulated time if the engine is
 * deterministic).
 */
std::vector<LogEntry>
runTokenRing(unsigned partitions, Tick lookahead, int hops,
             Tick *end_out = nullptr)
{
    ParallelEngine engine(partitions, lookahead);
    std::vector<std::vector<LogEntry>> logs(partitions);

    struct Hop
    {
        ParallelEngine *engine;
        std::vector<std::vector<LogEntry>> *logs;
        unsigned partitions;
        Tick lookahead;

        void
        run(PartitionId p, int remaining) const
        {
            Tick now = engine->now(p);
            (*logs)[p].push_back({p, now, remaining});
            // Partition-local follow-up work inside the same window.
            engine->postAt(p, now + 1, [this, p, remaining]() {
                (*logs)[p].push_back({p, engine->now(p), 1000 + remaining});
            });
            if (remaining == 0)
                return;
            PartitionId next = (p + 1) % partitions;
            engine->sendAt(p, next, now + lookahead,
                           [this, next, remaining]() {
                               run(next, remaining - 1);
                           });
        }
    };
    Hop hop{&engine, &logs, partitions, lookahead};

    for (PartitionId p = 0; p < partitions; ++p) {
        engine.postAt(p, p * 3, [&hop, p, hops]() { hop.run(p, hops); });
    }
    Tick end = engine.run();
    if (end_out != nullptr)
        *end_out = end;

    std::vector<LogEntry> merged;
    for (const std::vector<LogEntry> &l : logs)
        merged.insert(merged.end(), l.begin(), l.end());
    return merged;
}

TEST(EpochEngine, TokenRingIsBitIdenticalAcrossJobs)
{
    ScopedJobs restore(1);
    for (unsigned partitions : {2u, 5u, 8u}) {
        for (Tick lookahead : {Tick(1), Tick(7), Tick(200)}) {
            setGlobalJobs(1);
            Tick serial_end = 0;
            std::vector<LogEntry> serial =
                runTokenRing(partitions, lookahead, 20, &serial_end);
            EXPECT_FALSE(serial.empty());

            for (unsigned jobs : {2u, 8u}) {
                setGlobalJobs(jobs);
                Tick end = 0;
                std::vector<LogEntry> parallel =
                    runTokenRing(partitions, lookahead, 20, &end);
                EXPECT_EQ(end, serial_end)
                    << partitions << " partitions, lookahead " << lookahead
                    << ", jobs " << jobs;
                EXPECT_EQ(parallel.size(), serial.size());
                EXPECT_TRUE(parallel == serial)
                    << "event log diverged at " << partitions
                    << " partitions, lookahead " << lookahead << ", jobs "
                    << jobs;
            }
        }
    }
}

TEST(EpochEngine, MailboxCommitOrderIsCanonical)
{
    // Several sources target the same destination at the same tick: the
    // destination must execute them in (tick, src, per-src seq) order, no
    // matter which host worker ran each source or in what real-time order
    // the mailboxes filled.
    ScopedJobs restore(1);
    for (unsigned jobs : {1u, 8u}) {
        setGlobalJobs(jobs);
        ParallelEngine engine(4, 10);
        std::vector<int> arrivals; // written only by partition 3

        for (PartitionId src : {PartitionId(2), PartitionId(0),
                                PartitionId(1)}) {
            engine.postAt(src, 0, [&engine, &arrivals, src]() {
                // Two sends per source, same landing tick: per-src seq
                // breaks the tie after the src id does.
                for (int i = 0; i < 2; ++i) {
                    int tag = static_cast<int>(src) * 10 + i;
                    engine.sendAt(src, 3, 10, [&arrivals, tag]() {
                        arrivals.push_back(tag);
                    });
                }
            });
        }
        engine.run();
        EXPECT_EQ(arrivals,
                  (std::vector<int>{0, 1, 10, 11, 20, 21}))
            << "jobs=" << jobs;
    }
}

TEST(EpochEngine, EffectExactlyAtEpochEndIsLegalAndOrdered)
{
    // The epoch bound is exclusive: with lookahead L, an event at tick T
    // may send an effect landing exactly at T + L (the epoch end). This is
    // precisely the wire-latency edge case — a zero-duration transfer sent
    // at the epoch's first tick arrives exactly one lookahead later.
    ScopedJobs restore(1);
    constexpr Tick lookahead = 200;
    ParallelEngine engine(2, lookahead);
    std::vector<Tick> deliveries;
    engine.postAt(0, 0, [&engine, &deliveries]() {
        engine.sendAt(0, 1, lookahead, [&engine, &deliveries]() {
            deliveries.push_back(engine.now(1));
        });
    });
    Tick end = engine.run();
    ASSERT_EQ(deliveries.size(), 1u);
    EXPECT_EQ(deliveries[0], lookahead);
    EXPECT_EQ(end, lookahead);
    EXPECT_GE(engine.epochs(), 2u); // the effect ran in a later epoch
}

TEST(EpochEngine, SerialModeNeverEntersBarrierPath)
{
    ScopedJobs restore(1);
    setGlobalJobs(1);
    ParallelEngine engine(4, 5);
    for (PartitionId p = 0; p < 4; ++p)
        engine.postAt(p, 0, []() {});
    engine.run();
    EXPECT_FALSE(engine.usedBarrierPath());
    EXPECT_GT(engine.eventsExecuted(), 0u);

    setGlobalJobs(8);
    ParallelEngine par(4, 5);
    for (PartitionId p = 0; p < 4; ++p)
        par.postAt(p, 0, []() {});
    par.run();
    EXPECT_TRUE(par.usedBarrierPath());
}

TEST(EpochEngine, HorizonJumpsOverEmptyTime)
{
    // Epochs are placed at the global minimum pending tick, not walked
    // tick-by-tick: two events a million ticks apart cost O(1) epochs.
    ScopedJobs restore(1);
    ParallelEngine engine(2, 10);
    engine.postAt(0, 0, []() {});
    engine.postAt(1, 1000000, []() {});
    Tick end = engine.run();
    EXPECT_EQ(end, 1000000u);
    EXPECT_LE(engine.epochs(), 3u);
}

TEST(PartitionedNetEpoch, TransfersAreBitIdenticalAcrossJobs)
{
    // All-to-all epoch traffic over a real Interconnect: delivery ticks,
    // per-link byte counters and total traffic must be independent of the
    // host job count. This exercises the egress-mirror replay inside
    // Interconnect::commitTransfer and the (egress_begin, src, seq)
    // commit order under genuine link/ingress contention.
    ScopedJobs restore(1);
    constexpr unsigned n = 4;
    LinkParams link; // 64 B/cycle, 200 cycles

    struct Outcome
    {
        std::vector<Tick> deliveries;
        Bytes total = 0;
        std::uint64_t messages = 0;
        Tick last_delivery = 0;
    };

    auto run = [&]() {
        Interconnect net(n, link);
        ParallelEngine engine(n, link.latency);
        PartitionedNet pnet(net, engine);
        Outcome out;
        out.deliveries.assign(n, 0);

        for (GpuId src = 0; src < n; ++src) {
            engine.postAt(src, src * 13, [&, src]() {
                for (GpuId step = 1; step < n; ++step) {
                    GpuId dst = (src + step) % n;
                    Bytes bytes = 4096 * (src + 1) + 64 * step;
                    pnet.send(src, dst, bytes, engine.now(src),
                              TrafficClass::Composition,
                              [&out, &engine, dst]() {
                                  out.deliveries[dst] = std::max(
                                      out.deliveries[dst],
                                      engine.now(dst));
                              });
                }
            });
        }
        engine.run();
        out.total = net.traffic().total;
        out.messages = net.traffic().messages;
        out.last_delivery = net.lastDelivery();
        net.checkFlowConservation();
        net.checkDrained(out.last_delivery);
        return out;
    };

    setGlobalJobs(1);
    Outcome serial = run();
    EXPECT_EQ(serial.messages, static_cast<std::uint64_t>(n) * (n - 1));

    for (unsigned jobs : {2u, 8u}) {
        setGlobalJobs(jobs);
        Outcome parallel = run();
        EXPECT_EQ(parallel.deliveries, serial.deliveries)
            << "jobs=" << jobs;
        EXPECT_EQ(parallel.total, serial.total) << "jobs=" << jobs;
        EXPECT_EQ(parallel.messages, serial.messages) << "jobs=" << jobs;
        EXPECT_EQ(parallel.last_delivery, serial.last_delivery)
            << "jobs=" << jobs;
    }
}

#if CHOPIN_CHECK_LEVEL >= 1
TEST(EpochEngineDeath, SendInsideTheLookaheadWindowPanics)
{
    // A cross-partition effect landing before the current epoch's end
    // breaks the conservative contract and must trip the engine's assert,
    // not silently reorder.
    EXPECT_DEATH(
        {
            ParallelEngine engine(2, 100);
            engine.postAt(0, 50, [&engine]() {
                engine.sendAt(0, 1, engine.now(0) + 1, []() {});
            });
            engine.run();
        },
        "inside the current epoch");
}

TEST(EpochEngineDeath, PartitionStateTouchedFromWrongPartitionPanics)
{
    // PartitionCap's dynamic check: partition 0's event reaching into
    // partition 1's queue is exactly the cross-partition mutation the
    // mailbox discipline exists to prevent.
    EXPECT_DEATH(
        {
            ParallelEngine engine(2, 100);
            engine.postAt(0, 0, [&engine]() {
                engine.postAt(1, 500, []() {}); // wrong: must use sendAt
            });
            engine.run();
        },
        "partition");
}
#endif

} // namespace
} // namespace chopin

#include <gtest/gtest.h>

#include "sim/resource.hh"

namespace chopin
{
namespace
{

TEST(Resource, ImmediateClaim)
{
    Resource r;
    EXPECT_EQ(r.claim(0, 10), 10u);
    EXPECT_EQ(r.freeAt(), 10u);
    EXPECT_EQ(r.busyTime(), 10u);
}

TEST(Resource, BackToBackClaimsSerialize)
{
    Resource r;
    r.claim(0, 10);
    // Requested at t=5 but the resource is busy until 10.
    EXPECT_EQ(r.claim(5, 7), 17u);
    EXPECT_EQ(r.busyTime(), 17u);
}

TEST(Resource, IdleGapNotCountedBusy)
{
    Resource r;
    r.claim(0, 10);
    EXPECT_EQ(r.claim(100, 5), 105u);
    EXPECT_EQ(r.busyTime(), 15u); // the 90-cycle gap is idle
}

TEST(Resource, ZeroDurationClaim)
{
    Resource r;
    EXPECT_EQ(r.claim(7, 0), 7u);
    EXPECT_EQ(r.busyTime(), 0u);
}

TEST(Resource, ResetClears)
{
    Resource r;
    r.claim(0, 42);
    r.reset();
    EXPECT_EQ(r.freeAt(), 0u);
    EXPECT_EQ(r.busyTime(), 0u);
}

} // namespace
} // namespace chopin

#include <gtest/gtest.h>

#include "sim/resource.hh"

namespace chopin
{
namespace
{

TEST(Resource, ImmediateClaim)
{
    Resource r;
    EXPECT_EQ(r.claim(0, 10), 10u);
    EXPECT_EQ(r.freeAt(), 10u);
    EXPECT_EQ(r.busyTime(), 10u);
}

TEST(Resource, BackToBackClaimsSerialize)
{
    Resource r;
    r.claim(0, 10);
    // Requested at t=5 but the resource is busy until 10.
    EXPECT_EQ(r.claim(5, 7), 17u);
    EXPECT_EQ(r.busyTime(), 17u);
}

TEST(Resource, IdleGapNotCountedBusy)
{
    Resource r;
    r.claim(0, 10);
    EXPECT_EQ(r.claim(100, 5), 105u);
    EXPECT_EQ(r.busyTime(), 15u); // the 90-cycle gap is idle
}

TEST(Resource, ZeroDurationClaim)
{
    Resource r;
    EXPECT_EQ(r.claim(7, 0), 7u);
    EXPECT_EQ(r.busyTime(), 0u);
}

TEST(Resource, ResetClears)
{
    Resource r;
    r.claim(0, 42);
    r.reset();
    EXPECT_EQ(r.freeAt(), 0u);
    EXPECT_EQ(r.busyTime(), 0u);
}

#if CHOPIN_CHECK_LEVEL >= 1
TEST(ResourceDeath, ClaimOverflowingTickHorizonPanics)
{
    Resource r;
    r.claim(0, 10);
    // A negative duration from a bad float conversion wraps to ~2^64.
    EXPECT_DEATH(r.claim(0, ~Tick(0) - 5), "overflows the tick horizon");
}
#endif

TEST(Occupancy, CountsWithinCapacity)
{
    Occupancy occ(3);
    EXPECT_TRUE(occ.empty());
    occ.acquire(2);
    occ.acquire();
    EXPECT_EQ(occ.used(), 3u);
    EXPECT_EQ(occ.capacity(), 3u);
    occ.release(3);
    EXPECT_TRUE(occ.empty());
}

TEST(Occupancy, UnboundedByDefault)
{
    Occupancy occ;
    occ.acquire(1u << 20);
    EXPECT_EQ(occ.used(), 1u << 20);
    occ.reset();
    EXPECT_TRUE(occ.empty());
}

#if CHOPIN_CHECK_LEVEL >= 1
TEST(OccupancyDeath, AcquireAboveCapacityPanics)
{
    Occupancy occ(2);
    occ.acquire(2);
    EXPECT_DEATH(occ.acquire(), "occupancy above capacity");
}

TEST(OccupancyDeath, ReleaseBelowZeroPanics)
{
    Occupancy occ(4);
    occ.acquire();
    occ.release();
    EXPECT_DEATH(occ.release(), "occupancy below zero");
}
#endif

} // namespace
} // namespace chopin

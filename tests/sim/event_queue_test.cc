#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "util/check.hh"

namespace chopin
{
namespace
{

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    Tick end = eq.run();
    EXPECT_EQ(end, 30u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NowAdvancesDuringExecution)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(42, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleAfter(9, [&] { ++fired; });
    });
    Tick end = eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(end, 10u);
}

TEST(EventQueue, RunUntilLeavesLaterEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] { ++fired; });
    eq.schedule(15, [&] { ++fired; });
    eq.runUntil(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue eq;
    eq.schedule(5, [] {});
    eq.reset();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.now(), 0u);
}

#if CHOPIN_CHECK_LEVEL >= 1
TEST(EventQueueDeath, SchedulingIntoThePastPanics)
{
    EXPECT_DEATH(
        {
            EventQueue eq;
            eq.schedule(10, [&] { eq.schedule(5, [] {}); });
            eq.run();
        },
        "scheduled into the past");
}
#endif

} // namespace
} // namespace chopin

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "util/check.hh"

namespace chopin
{
namespace
{

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    Tick end = eq.run();
    EXPECT_EQ(end, 30u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NowAdvancesDuringExecution)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(42, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleAfter(9, [&] { ++fired; });
    });
    Tick end = eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(end, 10u);
}

TEST(EventQueue, RunUntilLeavesLaterEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] { ++fired; });
    eq.schedule(15, [&] { ++fired; });
    eq.runUntil(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilTickMaxDrainsEverything)
{
    // run() is runUntil(kTickMax): the named sentinel replaces the old
    // inline ~Tick(0), and events at the extreme representable tick still
    // execute rather than being fenced out.
    EventQueue eq;
    int fired = 0;
    eq.schedule(0, [&] { ++fired; });
    eq.schedule(kTickMax, [&] { ++fired; });
    Tick end = eq.runUntil(kTickMax);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(end, kTickMax);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, SameTickFifoSurvivesHeapChurn)
{
    // The FIFO tie-break must hold even when the heap is churned by pops
    // and re-pushes between insertions at the tied tick — the regime the
    // partition-merge commit puts the heap in (batches of same-tick
    // entries interleaved with execution). Events at tick 100 are
    // scheduled from several earlier events; execution order must be
    // exactly global insertion order.
    EventQueue eq;
    std::vector<int> order;
    int next_tag = 0;
    for (Tick t = 1; t <= 5; ++t) {
        eq.schedule(t, [&eq, &order, &next_tag] {
            for (int i = 0; i < 4; ++i) {
                int tag = next_tag++;
                eq.schedule(100, [&order, tag] { order.push_back(tag); });
            }
        });
    }
    eq.run();
    ASSERT_EQ(order.size(), 20u);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue eq;
    eq.schedule(5, [] {});
    eq.reset();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.now(), 0u);
}

#if CHOPIN_CHECK_LEVEL >= 1
TEST(EventQueueDeath, SchedulingIntoThePastPanics)
{
    EXPECT_DEATH(
        {
            EventQueue eq;
            eq.schedule(10, [&] { eq.schedule(5, [] {}); });
            eq.run();
        },
        "scheduled into the past");
}
#endif

} // namespace
} // namespace chopin

#include <gtest/gtest.h>

#include <string>

#include "util/check.hh"
#include "util/log.hh"

namespace chopin
{
namespace
{

/** Test handler: surface the failure as an exception instead of aborting. */
[[noreturn]] void
throwHandler(const CheckFailure &failure)
{
    throw failure;
}

void
returningHandler(const CheckFailure &)
{
    // Violates the handler contract on purpose; dispatch must still abort.
}

TEST(Check, PassingChecksAreSilent)
{
    ScopedCheckHandler guard(throwHandler);
    CHOPIN_CHECK(1 + 1 == 2, "arithmetic broke");
    CHOPIN_ASSERT(true);
    CHOPIN_DCHECK(true, "never shown");
}

TEST(Check, ConditionEvaluatedExactlyOnce)
{
    int evaluations = 0;
    CHOPIN_CHECK(++evaluations == 1);
    EXPECT_EQ(evaluations, 1);
}

TEST(Check, FailureRecordCarriesLocationAndFormattedMessage)
{
    ScopedCheckHandler guard(throwHandler);
    int got = 3;
    int fail_line = 0;
    try {
        fail_line = __LINE__ + 1;
        CHOPIN_CHECK(got == 4, "expected 4, got ", got);
        FAIL() << "check did not fire";
    } catch (const CheckFailure &f) {
        EXPECT_STREQ(f.kind, "CHECK");
        EXPECT_STREQ(f.condition, "got == 4");
        EXPECT_EQ(f.message, "expected 4, got 3");
        EXPECT_EQ(f.line, fail_line);
        EXPECT_NE(std::string(f.file).find("check_test.cc"),
                  std::string::npos);
    }
}

TEST(Check, MessageIsOptional)
{
    ScopedCheckHandler guard(throwHandler);
    try {
        CHOPIN_CHECK(false);
        FAIL() << "check did not fire";
    } catch (const CheckFailure &f) {
        EXPECT_TRUE(f.message.empty());
        EXPECT_STREQ(f.condition, "false");
    }
}

TEST(Check, ToStringRendersOneLineDiagnostic)
{
    CheckFailure with_msg{"net/interconnect.cc", 42, "ASSERT", "src != dst",
                          "bad transfer 1 -> 1"};
    EXPECT_EQ(with_msg.toString(),
              "ASSERT failed: src != dst: bad transfer 1 -> 1 "
              "(net/interconnect.cc:42)");

    CheckFailure no_msg{"a.cc", 7, "CHECK", "ok", ""};
    EXPECT_EQ(no_msg.toString(), "CHECK failed: ok (a.cc:7)");
}

TEST(Check, AssertGatedByCheckLevel)
{
    ScopedCheckHandler guard(throwHandler);
    int evaluations = 0;
    bool fired = false;
    try {
        CHOPIN_ASSERT(++evaluations == 0, "level-gated");
    } catch (const CheckFailure &f) {
        fired = true;
        EXPECT_STREQ(f.kind, "ASSERT");
    }
#if CHOPIN_CHECK_LEVEL >= 1
    EXPECT_TRUE(fired);
    EXPECT_EQ(evaluations, 1);
#else
    // Compiled out: the condition must not even be evaluated.
    EXPECT_FALSE(fired);
    EXPECT_EQ(evaluations, 0);
#endif
}

TEST(Check, DcheckGatedByCheckLevel)
{
    ScopedCheckHandler guard(throwHandler);
    int evaluations = 0;
    bool fired = false;
    try {
        CHOPIN_DCHECK(++evaluations == 0, "debug-only");
    } catch (const CheckFailure &f) {
        fired = true;
        EXPECT_STREQ(f.kind, "DCHECK");
    }
#if CHOPIN_CHECK_LEVEL >= 2
    EXPECT_TRUE(fired);
    EXPECT_EQ(evaluations, 1);
#else
    EXPECT_FALSE(fired);
    EXPECT_EQ(evaluations, 0);
#endif
}

TEST(Check, ScopedHandlerRestoresThePreviousHandler)
{
    CheckHandler outer = setCheckHandler(returningHandler);
    {
        ScopedCheckHandler guard(throwHandler);
        EXPECT_THROW(CHOPIN_CHECK(false), CheckFailure);
    }
    // The scope must have reinstated returningHandler, not the default.
    EXPECT_EQ(setCheckHandler(outer), &returningHandler);
}

TEST(Check, LegacyAssertForwardsToCheck)
{
    ScopedCheckHandler guard(throwHandler);
    try {
        chopin_assert(2 > 3, "legacy spelling");
        FAIL() << "chopin_assert did not fire";
    } catch (const CheckFailure &f) {
        EXPECT_STREQ(f.kind, "CHECK");
        EXPECT_EQ(f.message, "legacy spelling");
    }
}

TEST(CheckDeath, DefaultHandlerPrintsAndAborts)
{
    EXPECT_DEATH(CHOPIN_CHECK(2 + 2 == 5, "arithmetic broke"),
                 "CHECK failed: 2 \\+ 2 == 5: arithmetic broke");
}

TEST(CheckDeath, ReturningHandlerStillAborts)
{
    EXPECT_DEATH(
        {
            setCheckHandler(returningHandler);
            CHOPIN_CHECK(false, "handler returned");
        },
        "CHECK failed: false: handler returned");
}

TEST(CheckDeath, CliHandlerPrintsToolDiagnosticAndExits2)
{
    EXPECT_EXIT(
        {
            setCliCheckTool("demo_tool");
            CHOPIN_CHECK(false, "--scale must be >= 1");
        },
        ::testing::ExitedWithCode(2), "demo_tool: error: --scale must be >= 1");
}

TEST(CheckDeath, CliHandlerFallsBackToConditionText)
{
    EXPECT_EXIT(
        {
            setCliCheckTool("demo_tool");
            int argc = 0;
            CHOPIN_CHECK(argc >= 1);
        },
        ::testing::ExitedWithCode(2), "demo_tool: error: argc >= 1");
}

} // namespace
} // namespace chopin

#include <gtest/gtest.h>

#include "net/interconnect.hh"

namespace chopin
{
namespace
{

TEST(Interconnect, TransferTimeIsSizeOverBandwidthPlusLatency)
{
    LinkParams link{64.0, 200};
    Interconnect net(4, link);
    // 6400 bytes at 64 B/cycle = 100 cycles + 200 latency.
    EXPECT_EQ(net.transfer(0, 1, 6400, 0, TrafficClass::Composition), 300u);
}

TEST(Interconnect, TransferRoundsUpPartialCycles)
{
    Interconnect net(2, {64.0, 0});
    EXPECT_EQ(net.transfer(0, 1, 65, 0, TrafficClass::Sync), 2u);
}

TEST(Interconnect, EgressSerializesASendersMessages)
{
    Interconnect net(4, {64.0, 0});
    Tick first = net.transfer(0, 1, 6400, 0, TrafficClass::Composition);
    // Different destination, same source: waits for the egress port.
    Tick second = net.transfer(0, 2, 6400, 0, TrafficClass::Composition);
    EXPECT_EQ(first, 100u);
    EXPECT_EQ(second, 200u);
}

TEST(Interconnect, IngressSerializesAReceiversMessages)
{
    Interconnect net(4, {64.0, 0});
    net.transfer(1, 0, 6400, 0, TrafficClass::Composition);
    Tick second = net.transfer(2, 0, 6400, 0, TrafficClass::Composition);
    EXPECT_EQ(second, 200u);
}

TEST(Interconnect, DisjointPairsRunInParallel)
{
    Interconnect net(4, {64.0, 0});
    Tick a = net.transfer(0, 1, 6400, 0, TrafficClass::Composition);
    Tick b = net.transfer(2, 3, 6400, 0, TrafficClass::Composition);
    EXPECT_EQ(a, 100u);
    EXPECT_EQ(b, 100u); // no shared resource
}

TEST(Interconnect, FullDuplexPairExchange)
{
    Interconnect net(2, {64.0, 0});
    Tick ab = net.transfer(0, 1, 6400, 0, TrafficClass::Composition);
    Tick ba = net.transfer(1, 0, 6400, 0, TrafficClass::Composition);
    EXPECT_EQ(ab, 100u);
    EXPECT_EQ(ba, 100u); // opposite directions use separate links/ports
}

TEST(Interconnect, BlockedIngressDelaysDelivery)
{
    Interconnect net(2, {64.0, 0});
    net.blockIngressUntil(1, 500); // GPU1 still rendering
    Tick arrival = net.transfer(0, 1, 64, 0, TrafficClass::Composition);
    EXPECT_EQ(arrival, 501u);
}

TEST(Interconnect, HeadOfLineBlockingThroughBusyReceiver)
{
    Interconnect net(3, {64.0, 0});
    net.blockIngressUntil(1, 1000);
    // Sender 0 first targets blocked GPU1, then free GPU2: the second send
    // is stuck behind the first on GPU0's egress port.
    net.transfer(0, 1, 64, 0, TrafficClass::Composition);
    Tick second = net.transfer(0, 2, 64, 0, TrafficClass::Composition);
    EXPECT_GE(second, 1001u);
}

TEST(Interconnect, EarliestParameterRespected)
{
    Interconnect net(2, {64.0, 10});
    EXPECT_EQ(net.transfer(0, 1, 64, 777, TrafficClass::Sync), 788u);
}

TEST(Interconnect, IdealLinksAreInstant)
{
    Interconnect net(2, LinkParams::ideal());
    EXPECT_EQ(net.transfer(0, 1, 1 << 30, 42, TrafficClass::Composition),
              42u);
    EXPECT_EQ(net.transferCycles(1 << 30), 0u);
}

TEST(Interconnect, TrafficAccountedPerClass)
{
    Interconnect net(4, {64.0, 0});
    net.transfer(0, 1, 100, 0, TrafficClass::Composition);
    net.transfer(0, 2, 200, 0, TrafficClass::PrimDist);
    net.transfer(1, 2, 300, 0, TrafficClass::Sync);
    net.transfer(3, 2, 400, 0, TrafficClass::Composition);
    const TrafficStats &t = net.traffic();
    EXPECT_EQ(t.total, 1000u);
    EXPECT_EQ(t.messages, 4u);
    EXPECT_EQ(t.ofClass(TrafficClass::Composition), 500u);
    EXPECT_EQ(t.ofClass(TrafficClass::PrimDist), 200u);
    EXPECT_EQ(t.ofClass(TrafficClass::Sync), 300u);
    EXPECT_EQ(t.ofClass(TrafficClass::Scheduler), 0u);
}

TEST(Interconnect, ResetClearsPortsAndTraffic)
{
    Interconnect net(2, {64.0, 0});
    net.transfer(0, 1, 6400, 0, TrafficClass::Sync);
    net.reset();
    EXPECT_EQ(net.traffic().total, 0u);
    EXPECT_EQ(net.transfer(0, 1, 64, 0, TrafficClass::Sync), 1u);
}

#if CHOPIN_CHECK_LEVEL >= 1
TEST(InterconnectDeath, SelfTransferPanics)
{
    Interconnect net(2, {64.0, 0});
    EXPECT_DEATH(net.transfer(1, 1, 64, 0, TrafficClass::Sync),
                 "bad transfer");
}
#endif

} // namespace
} // namespace chopin

#include <gtest/gtest.h>

#include "net/interconnect.hh"
#include "util/check.hh"

namespace chopin
{
namespace
{

[[noreturn]] void
throwHandler(const CheckFailure &failure)
{
    throw failure;
}

TEST(InterconnectInvariants, LinkBytesTracksPerPairInjection)
{
    Interconnect net(3, {64.0, 0});
    net.transfer(0, 1, 100, 0, TrafficClass::Composition);
    net.transfer(0, 1, 50, 0, TrafficClass::Sync);
    net.transfer(1, 2, 10, 0, TrafficClass::PrimDist);
    EXPECT_EQ(net.linkBytes(0, 1), 150u);
    EXPECT_EQ(net.linkBytes(1, 2), 10u);
    EXPECT_EQ(net.linkBytes(1, 0), 0u);
    EXPECT_EQ(net.linkBytes(2, 1), 0u);
}

TEST(InterconnectInvariants, FlowConservationHoldsAfterMixedTraffic)
{
    Interconnect net(4, {64.0, 200});
    net.transfer(0, 1, 4096, 0, TrafficClass::Composition);
    net.transfer(1, 0, 128, 50, TrafficClass::Sync);
    net.transfer(2, 3, 777, 0, TrafficClass::PrimDist);
    net.transfer(3, 0, 64, 10, TrafficClass::Scheduler);
    net.checkFlowConservation(); // must not fire
    EXPECT_EQ(net.traffic().total, 4096u + 128u + 777u + 64u);
}

TEST(InterconnectInvariants, FlowConservationHoldsOnIdleNetwork)
{
    Interconnect net(2, {64.0, 0});
    net.checkFlowConservation();
    net.checkDrained(0);
}

TEST(InterconnectInvariants, InflightDrainsAtDeliveryTimes)
{
    Interconnect net(2, {64.0, 100});
    Tick d1 = net.transfer(0, 1, 64, 0, TrafficClass::Composition);
    Tick d2 = net.transfer(0, 1, 64, 0, TrafficClass::Composition);
    ASSERT_LT(d1, d2); // serialized on the egress port
    EXPECT_EQ(net.inflightAfter(0), 2u);
    EXPECT_EQ(net.inflightAfter(d1 - 1), 2u);
    EXPECT_EQ(net.inflightAfter(d1), 1u);
    EXPECT_EQ(net.inflightAfter(d2), 0u);
    EXPECT_EQ(net.lastDelivery(), d2);
}

TEST(InterconnectInvariants, CheckDrainedPassesAtFrameEnd)
{
    Interconnect net(2, {64.0, 10});
    Tick done = net.transfer(0, 1, 640, 0, TrafficClass::Composition);
    net.checkDrained(done); // frame ends no earlier than the last delivery
    net.checkFlowConservation();
}

TEST(InterconnectInvariants, UndrainedTrafficReportsThroughHandler)
{
    ScopedCheckHandler guard(throwHandler);
    Interconnect net(2, {64.0, 10});
    Tick done = net.transfer(0, 1, 640, 0, TrafficClass::Composition);
    try {
        net.checkDrained(done - 1);
        FAIL() << "checkDrained did not fire";
    } catch (const CheckFailure &f) {
        EXPECT_STREQ(f.kind, "CHECK");
        EXPECT_NE(f.message.find("still in flight"), std::string::npos);
    }
}

TEST(InterconnectInvariants, ResetClearsInvariantBookkeeping)
{
    Interconnect net(2, {64.0, 50});
    net.transfer(0, 1, 6400, 0, TrafficClass::Sync);
    net.transfer(1, 0, 320, 0, TrafficClass::Composition);
    net.reset();
    EXPECT_EQ(net.linkBytes(0, 1), 0u);
    EXPECT_EQ(net.linkBytes(1, 0), 0u);
    EXPECT_EQ(net.lastDelivery(), 0u);
    EXPECT_EQ(net.inflightAfter(0), 0u);
    net.checkFlowConservation();
    net.checkDrained(0);
}

TEST(InterconnectInvariantsDeath, CheckDrainedAbortsUnderDefaultHandler)
{
    Interconnect net(2, {64.0, 10});
    Tick done = net.transfer(0, 1, 640, 0, TrafficClass::Composition);
    EXPECT_DEATH(net.checkDrained(done - 1), "still in flight at frame end");
}

} // namespace
} // namespace chopin

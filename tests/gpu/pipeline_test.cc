#include <gtest/gtest.h>

#include <cmath>

#include "gpu/pipeline.hh"

namespace chopin
{
namespace
{

/** Simple stats with controllable stage costs. */
DrawStats
statsOf(std::uint64_t tris, std::uint64_t frags = 0)
{
    DrawStats s;
    s.tris_in = tris;
    s.verts_shaded = 3 * tris;
    s.tris_rasterized = tris;
    s.frags_generated = frags;
    s.frags_early_pass = frags;
    s.frags_shaded = frags;
    s.frags_written = frags;
    return s;
}

TEST(Timing, GeometryCyclesFormula)
{
    TimingParams p;
    DrawStats s = statsOf(1024);
    Tick expected =
        p.draw_setup_cycles +
        static_cast<Tick>(std::ceil(3 * 1024 * p.vert_shader_ops /
                                        p.shader_lanes +
                                    1024 / p.tri_setup_rate));
    EXPECT_EQ(p.geometryCycles(s), expected);
}

TEST(Timing, FragmentCyclesScaleWithShadedFragments)
{
    TimingParams p;
    Tick small = p.fragmentCycles(statsOf(10, 1000));
    Tick big = p.fragmentCycles(statsOf(10, 10000));
    EXPECT_GT(big, small * 8);
}

TEST(Timing, CoarseRejectIsCheaperThanTraversal)
{
    TimingParams p;
    DrawStats traverse = statsOf(1000);
    DrawStats reject;
    reject.tris_coarse_rejected = 1000;
    EXPECT_GT(p.rasterCycles(traverse), p.rasterCycles(reject));
}

TEST(Pipeline, SingleDrawLatencyIsSumOfStages)
{
    TimingParams p;
    p.batch_tris = 1 << 20; // one batch
    GpuPipeline pipe(p);
    DrawStats s = statsOf(100, 500);
    Tick done = pipe.submitDraw(0, s, 0);
    EXPECT_EQ(done, p.geometryCycles(s) + p.rasterCycles(s) +
                        p.fragmentCycles(s));
}

TEST(Pipeline, BatchingOverlapsStages)
{
    TimingParams p;
    p.batch_tris = 64;
    GpuPipeline mono(p);
    TimingParams p1 = p;
    p1.batch_tris = 1 << 20;
    GpuPipeline single(p1);
    DrawStats s = statsOf(4096, 100000);
    Tick batched = mono.submitDraw(0, s, 0);
    Tick unbatched = single.submitDraw(0, s, 0);
    EXPECT_LT(batched, unbatched); // pipelining shortens latency
}

TEST(Pipeline, BackToBackDrawsShareStages)
{
    TimingParams p;
    GpuPipeline pipe(p);
    DrawStats s = statsOf(512, 2000);
    Tick first = pipe.submitDraw(0, s, 0);
    Tick second = pipe.submitDraw(1, s, 0);
    EXPECT_GT(second, first);
    // The second draw overlaps the first (starts in geometry while the
    // first is in later stages), so it finishes earlier than serial.
    EXPECT_LT(second, 2 * first);
}

TEST(Pipeline, IssueTimeDelaysWork)
{
    TimingParams p;
    GpuPipeline pipe(p);
    DrawStats s = statsOf(64);
    Tick at_zero = pipe.submitDraw(0, s, 0);
    GpuPipeline pipe2(p);
    Tick delayed = pipe2.submitDraw(0, s, 1000);
    EXPECT_EQ(delayed, at_zero + 1000);
}

TEST(Pipeline, ProcessedTrisProgressesMonotonically)
{
    TimingParams p;
    p.batch_tris = 128;
    GpuPipeline pipe(p);
    pipe.submitDraw(0, statsOf(1000), 0);
    EXPECT_EQ(pipe.processedTrisAt(0), 0u);
    Tick end = pipe.finishTime();
    EXPECT_EQ(pipe.processedTrisAt(end), 1000u);
    std::uint64_t prev = 0;
    for (Tick t = 0; t <= end; t += end / 20 + 1) {
        std::uint64_t now = pipe.processedTrisAt(t);
        EXPECT_GE(now, prev);
        prev = now;
    }
    // Mid-way, some but not all triangles are processed (batching).
    EXPECT_GT(pipe.processedTrisAt(end / 2), 0u);
}

TEST(Pipeline, BusyTimesAccumulate)
{
    TimingParams p;
    GpuPipeline pipe(p);
    DrawStats s = statsOf(256, 1000);
    pipe.submitDraw(0, s, 0);
    EXPECT_EQ(pipe.geomBusy(), p.geometryCycles(s));
    EXPECT_EQ(pipe.rasterBusy(), p.rasterCycles(s));
    EXPECT_EQ(pipe.fragBusy(), p.fragmentCycles(s));
}

TEST(Pipeline, GeometryWorkCompetesWithDraws)
{
    TimingParams p;
    GpuPipeline pipe(p);
    Tick w = pipe.submitGeometryWork(0, 5000);
    EXPECT_EQ(w, 5000u);
    DrawStats s = statsOf(64);
    Tick done = pipe.submitDraw(0, s, 0);
    // The draw's geometry cannot start before the projection work ends.
    EXPECT_GE(done, 5000u);
}

TEST(Pipeline, TimingRecordsKeptPerDraw)
{
    TimingParams p;
    GpuPipeline pipe(p);
    pipe.submitDraw(7, statsOf(100), 0);
    pipe.submitDraw(9, statsOf(200), 50);
    ASSERT_EQ(pipe.drawTimings().size(), 2u);
    EXPECT_EQ(pipe.drawTimings()[0].id, 7u);
    EXPECT_EQ(pipe.drawTimings()[1].id, 9u);
    EXPECT_EQ(pipe.drawTimings()[1].tris, 200u);
    EXPECT_GT(pipe.drawTimings()[0].geom_cycles, 0u);
}

TEST(Pipeline, ResetClearsState)
{
    TimingParams p;
    GpuPipeline pipe(p);
    pipe.submitDraw(0, statsOf(100), 0);
    pipe.reset();
    EXPECT_EQ(pipe.finishTime(), 0u);
    EXPECT_EQ(pipe.submittedTris(), 0u);
    EXPECT_EQ(pipe.geomBusy(), 0u);
    EXPECT_TRUE(pipe.drawTimings().empty());
}

} // namespace
} // namespace chopin

/**
 * @file
 * Sweep engine + content-addressed result cache (core/sweep.hh): the
 * contracts the figure suite rides on. Memoization and disk reuse must be
 * invisible — results bit-identical to a fresh computation at any
 * sweep_jobs value, cold or warm — and the disk cache must reject (never
 * trust, never crash on) corrupt, truncated or version-mismatched entries.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/sweep.hh"

namespace chopin
{
namespace
{

/** Small, fast scenario set: tiny traces, 2 GPUs. */
constexpr int kScale = 256;

SystemConfig
smallConfig()
{
    SystemConfig cfg;
    cfg.num_gpus = 2;
    return cfg;
}

Scenario
smallScenario(Scheme scheme = Scheme::Duplication)
{
    return Scenario{scheme, "ut3", smallConfig()};
}

SweepOptions
optionsWith(std::string cache_dir, unsigned sweep_jobs = 1)
{
    SweepOptions opts;
    opts.sweep_jobs = sweep_jobs;
    opts.scale = kScale;
    opts.cache_dir = std::move(cache_dir);
    return opts;
}

/** Fresh directory under the test temp dir, unique per test. */
std::string
freshCacheDir(const std::string &name)
{
    std::string dir = ::testing::TempDir() + "chopin_sweep_" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

void
expectIdentical(const FrameResult &a, const FrameResult &b)
{
    EXPECT_EQ(a.frame_hash, b.frame_hash);
    EXPECT_EQ(a.content_hash, b.content_hash);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.traffic.total, b.traffic.total);
    EXPECT_EQ(a.breakdown.total(), b.breakdown.total());
    ASSERT_EQ(a.image.data().size(), b.image.data().size());
    EXPECT_EQ(0, std::memcmp(a.image.data().data(), b.image.data().data(),
                             a.image.data().size() * sizeof(Color)));
}

TEST(Sweep, RepeatedRunIsAMemoHit)
{
    SweepRunner runner(optionsWith(""));
    const FrameResult &first = runner.run(smallScenario());
    const FrameResult &second = runner.run(smallScenario());
    EXPECT_EQ(&first, &second); // same node-stable entry, not a copy

    SweepStats s = runner.stats();
    EXPECT_EQ(s.computed, 1u);
    EXPECT_EQ(s.memo_hits, 1u);
    EXPECT_EQ(s.disk_hits, 0u);
    EXPECT_EQ(s.stored, 0u); // no cache dir configured
}

TEST(Sweep, DiskHitAcrossRunnersIsBitIdentical)
{
    std::string dir = freshCacheDir("disk_hit");

    SweepRunner writer(optionsWith(dir));
    const FrameResult &computed = writer.run(smallScenario());
    EXPECT_EQ(writer.stats().stored, 1u);

    SweepRunner reader(optionsWith(dir));
    const FrameResult &loaded = reader.run(smallScenario());
    SweepStats s = reader.stats();
    EXPECT_EQ(s.disk_hits, 1u);
    EXPECT_EQ(s.computed, 0u);
    expectIdentical(computed, loaded);
}

TEST(Sweep, ColdRunIgnoresDiskButStillStores)
{
    std::string dir = freshCacheDir("cold");

    SweepRunner writer(optionsWith(dir));
    writer.run(smallScenario());

    SweepOptions cold = optionsWith(dir);
    cold.cache_read = false;
    SweepRunner cold_runner(cold);
    cold_runner.run(smallScenario());
    SweepStats s = cold_runner.stats();
    EXPECT_EQ(s.computed, 1u);
    EXPECT_EQ(s.disk_hits, 0u); // entry existed but reads are disabled
    EXPECT_EQ(s.stored, 1u);    // refreshed (evicts any stale entry)
}

TEST(Sweep, VersionBumpChangesEveryScenarioKey)
{
    SweepRunner runner(optionsWith(""));
    std::uint64_t trace_fp = runner.traceFp("ut3");
    SystemConfig cfg = smallConfig();
    std::uint64_t v1 =
        scenarioFingerprint(Scheme::Duplication, trace_fp, cfg, 1);
    std::uint64_t v2 =
        scenarioFingerprint(Scheme::Duplication, trace_fp, cfg, 2);
    EXPECT_NE(v1, v2); // a bumped schema version misses, never aliases
}

TEST(Sweep, ScenarioFingerprintSeparatesSchemeTraceAndConfig)
{
    SweepRunner runner(optionsWith(""));
    std::uint64_t ut3 = runner.traceFp("ut3");
    std::uint64_t wolf = runner.traceFp("wolf");
    SystemConfig cfg = smallConfig();
    SystemConfig cfg4 = cfg;
    cfg4.num_gpus = 4;

    std::uint64_t base =
        scenarioFingerprint(Scheme::Duplication, ut3, cfg, 1);
    EXPECT_NE(base, scenarioFingerprint(Scheme::Chopin, ut3, cfg, 1));
    EXPECT_NE(base, scenarioFingerprint(Scheme::Duplication, wolf, cfg, 1));
    EXPECT_NE(base, scenarioFingerprint(Scheme::Duplication, ut3, cfg4, 1));
}

TEST(Sweep, VersionMismatchedEntryRejectedThenEvictedByStore)
{
    std::string dir = freshCacheDir("version");

    SweepRunner runner(optionsWith(dir));
    const FrameResult &r = runner.run(smallScenario());
    std::uint64_t key = scenarioFingerprint(
        smallScenario().scheme, runner.traceFp("ut3"),
        smallScenario().cfg, resultCacheVersion());

    // A cache constructed with a different schema version sees the same
    // file (path is keyed by the fingerprint alone) but must reject its
    // header.
    ResultCache v1(dir, resultCacheVersion());
    ResultCache v2(dir, resultCacheVersion() + 1);
    FrameResult out;
    EXPECT_EQ(v1.load(key, out), CacheLoad::Hit);
    EXPECT_EQ(v2.load(key, out), CacheLoad::Rejected);

    // Storing through the new version evicts the old entry in place.
    EXPECT_TRUE(v2.store(key, r));
    EXPECT_EQ(v2.load(key, out), CacheLoad::Hit);
    EXPECT_EQ(v1.load(key, out), CacheLoad::Rejected);
}

TEST(Sweep, CorruptEntryIsRejectedAndRecomputed)
{
    std::string dir = freshCacheDir("corrupt");

    SweepRunner writer(optionsWith(dir));
    const FrameResult &good = writer.run(smallScenario());
    std::uint64_t key = scenarioFingerprint(
        smallScenario().scheme, writer.traceFp("ut3"),
        smallScenario().cfg, resultCacheVersion());

    ResultCache cache(dir, resultCacheVersion());
    std::string path = cache.path(key);
    ASSERT_TRUE(std::filesystem::exists(path));

    // Flip bytes in the middle of the payload: header still parses, the
    // image hash validation must catch it.
    {
        std::fstream f(path,
                       std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekp(static_cast<std::streamoff>(
            std::filesystem::file_size(path) / 2));
        const char junk[8] = {'X', 'X', 'X', 'X', 'X', 'X', 'X', 'X'};
        f.write(junk, sizeof(junk));
    }
    FrameResult out;
    EXPECT_EQ(cache.load(key, out), CacheLoad::Rejected);

    // A runner over the poisoned cache recomputes without crashing and
    // re-stores a clean entry.
    SweepRunner reader(optionsWith(dir));
    const FrameResult &recomputed = reader.run(smallScenario());
    SweepStats s = reader.stats();
    EXPECT_EQ(s.disk_rejected, 1u);
    EXPECT_EQ(s.computed, 1u);
    EXPECT_EQ(s.stored, 1u);
    expectIdentical(good, recomputed);
    EXPECT_EQ(cache.load(key, out), CacheLoad::Hit); // healed
}

TEST(Sweep, TruncatedEntryIsRejectedAndRecomputed)
{
    std::string dir = freshCacheDir("truncated");

    SweepRunner writer(optionsWith(dir));
    writer.run(smallScenario());
    std::uint64_t key = scenarioFingerprint(
        smallScenario().scheme, writer.traceFp("ut3"),
        smallScenario().cfg, resultCacheVersion());

    ResultCache cache(dir, resultCacheVersion());
    std::string path = cache.path(key);
    std::filesystem::resize_file(path,
                                 std::filesystem::file_size(path) / 2);
    FrameResult out;
    EXPECT_EQ(cache.load(key, out), CacheLoad::Rejected);

    SweepRunner reader(optionsWith(dir));
    reader.run(smallScenario());
    SweepStats s = reader.stats();
    EXPECT_EQ(s.disk_rejected, 1u);
    EXPECT_EQ(s.computed, 1u);
}

TEST(Sweep, GarbageFileIsRejectedNotFatal)
{
    std::string dir = freshCacheDir("garbage");
    ResultCache cache(dir, resultCacheVersion());
    std::uint64_t key = 0x1234abcd5678ef90ull;
    {
        std::ofstream f(cache.path(key), std::ios::binary);
        f << "this is not a chopin result file";
    }
    FrameResult out;
    EXPECT_EQ(cache.load(key, out), CacheLoad::Rejected);
    EXPECT_EQ(cache.load(0xfeedface0ull, out), CacheLoad::Miss); // absent
}

TEST(Sweep, PrefetchComputesOnceThenServesMemoHits)
{
    SweepRunner runner(optionsWith("", /*sweep_jobs=*/2));
    std::vector<Scenario> grid;
    for (Scheme s : {Scheme::Duplication, Scheme::Chopin})
        grid.push_back(smallScenario(s));
    grid.push_back(smallScenario(Scheme::Duplication)); // duplicate cell

    runner.prefetch(grid);
    SweepStats after_prefetch = runner.stats();
    EXPECT_EQ(after_prefetch.computed, 2u); // deduplicated before running

    for (const Scenario &s : grid)
        runner.run(s);
    SweepStats after_reads = runner.stats();
    EXPECT_EQ(after_reads.computed, 2u);
    EXPECT_EQ(after_reads.memo_hits, 3u);
}

TEST(Sweep, DeterministicAcrossSweepJobsAndColdWarm)
{
    // The acceptance contract: identical results at --sweep-jobs 1/2/8,
    // cold or warm. Serial-cold is the reference.
    std::vector<Scenario> grid;
    for (Scheme scheme :
         {Scheme::Duplication, Scheme::Gpupd, Scheme::ChopinCompSched})
        for (unsigned gpus : {2u, 4u}) {
            SystemConfig cfg;
            cfg.num_gpus = gpus;
            grid.push_back(Scenario{scheme, "ut3", cfg});
        }

    SweepRunner reference(optionsWith("", 1));
    reference.prefetch(grid);

    std::string dir = freshCacheDir("determinism");
    for (unsigned jobs : {1u, 2u, 8u}) {
        // Cold: computes everything (stores into the shared dir).
        SweepOptions cold = optionsWith(dir, jobs);
        cold.cache_read = false;
        SweepRunner cold_runner(cold);
        cold_runner.prefetch(grid);
        // Warm: serves everything from the disk entries the cold runner
        // just wrote.
        SweepRunner warm_runner(optionsWith(dir, jobs));
        warm_runner.prefetch(grid);
        EXPECT_EQ(warm_runner.stats().computed, 0u) << "jobs=" << jobs;

        for (const Scenario &s : grid) {
            expectIdentical(reference.run(s), cold_runner.run(s));
            expectIdentical(reference.run(s), warm_runner.run(s));
        }
    }
}

TEST(Sweep, StreamRunIsMemoizedBySequenceKey)
{
    SweepRunner runner(optionsWith(""));
    SequenceParams params;
    params.num_frames = 3;
    SequenceTrace seq = generateBenchmarkSequence("ut3", kScale, params);
    SequenceOptions opt;
    opt.scheme = SequenceScheme::HybridAfrSfr;
    opt.afr_groups = 2;

    const SequenceResult &first = runner.runStream(opt, seq, smallConfig());
    const SequenceResult &second =
        runner.runStream(opt, seq, smallConfig());
    EXPECT_EQ(&first, &second); // same node-stable entry, not a copy
    EXPECT_EQ(first.num_frames, 3u);

    SweepStats s = runner.stats();
    EXPECT_EQ(s.computed, 1u);
    EXPECT_EQ(s.memo_hits, 1u);

    // A different stream schedule is a different scenario.
    SequenceOptions other = opt;
    other.scheme = SequenceScheme::PureAfr;
    runner.runStream(other, seq, smallConfig());
    EXPECT_EQ(runner.stats().computed, 2u);
}

TEST(Sweep, SequenceKeySeparatesEveryInput)
{
    SequenceParams params;
    params.num_frames = 3;
    SequenceTrace seq = generateBenchmarkSequence("ut3", kScale, params);
    std::uint64_t seq_fp = sequenceFingerprint(seq);
    SystemConfig cfg = smallConfig();
    SequenceOptions opt;
    const std::uint64_t key =
        sequenceScenarioFingerprint(opt, seq_fp, cfg, 1);

    { // options (scheme / groups / intra / carry-over all feed in)
        SequenceOptions o = opt;
        o.afr_groups += 2;
        EXPECT_NE(sequenceScenarioFingerprint(o, seq_fp, cfg, 1), key);
    }
    { // sequence content: any perturbed v2 field moves the key, because
      // sequenceFingerprint() covers it (tests/trace/sequence_io_test.cc
      // walks each field) and the key folds the fingerprint verbatim.
        SequenceTrace s = seq;
        s.knobs.camera_step *= 2.0f;
        EXPECT_NE(sequenceScenarioFingerprint(opt, sequenceFingerprint(s),
                                              cfg, 1),
                  key);
    }
    { // config
        SystemConfig c = cfg;
        c.group_threshold += 1;
        EXPECT_NE(sequenceScenarioFingerprint(opt, seq_fp, c, 1), key);
    }
    { // cache version (resultCacheVersion() folds the stream metric
      // schema, so a SequenceAccounting change flows through here)
        EXPECT_NE(sequenceScenarioFingerprint(opt, seq_fp, cfg, 2), key);
    }
}

} // namespace
} // namespace chopin

/**
 * @file
 * Metric registry round-trip and perturbation tests.
 *
 * The registry's whole value is that *every* accounting field flows through
 * one visitation, so these tests are deliberately structural:
 *
 *  - FrameAccounting must be fully covered: its size must equal 8 bytes per
 *    registered metric, and a serialize/deserialize round trip must
 *    reconstruct the struct byte-for-byte. Adding a field without a
 *    visitMetrics registration breaks the size identity; registering it
 *    without storage breaks the round trip.
 *  - Perturbing any single registered field must flip metricsEqual and
 *    name exactly that field in metricsDiff — the determinism gates report
 *    *which* counter diverged, so the naming must be precise and unique.
 *  - The schema fingerprint must separate every registered struct and move
 *    when the layout changes (exercised indirectly: distinct types have
 *    distinct fingerprints, repeated evaluation is stable).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <sstream>

#include "sfr/config.hh"
#include "stats/metrics.hh"

namespace chopin
{
namespace
{

/** Fills each registered field with a distinct nonzero value (1, 2, ...) */
struct SequenceFiller
{
    std::uint64_t next = 1;

    template <typename U>
    void
    field(const MetricDesc &, U &v)
    {
        v = static_cast<U>(next++);
    }
};

/** Adds one to the @p target-th registered field, leaves the rest alone. */
struct PerturbOne
{
    std::size_t target;
    std::size_t index = 0;

    template <typename U>
    void
    field(const MetricDesc &, U &v)
    {
        if (index++ == target)
            v = static_cast<U>(static_cast<std::uint64_t>(v) + 1);
    }
};

template <typename T>
T
filled()
{
    T t{};
    SequenceFiller f;
    T::visitMetrics(t, f);
    return t;
}

TEST(Metrics, FrameAccountingIsFullyRegistered)
{
    // Every byte of FrameAccounting belongs to a registered 64-bit metric:
    // no padding, no unregistered field. A field added to the struct but
    // not to visitMetrics fails here before it can silently drop out of
    // the result cache and the determinism comparisons.
    FrameAccounting a{};
    EXPECT_EQ(sizeof(FrameAccounting), 8 * collectMetrics(a).size());
}

TEST(Metrics, FrameAccountingRoundTripIsByteExact)
{
    FrameAccounting a = filled<FrameAccounting>();

    std::stringstream ss;
    writeMetrics(ss, a);
    EXPECT_EQ(ss.str().size(), 8 * collectMetrics(a).size());

    FrameAccounting b{};
    StreamReader r(ss);
    ASSERT_TRUE(readMetrics(r, b));
    EXPECT_TRUE(metricsEqual(a, b));
    EXPECT_EQ(std::memcmp(&a, &b, sizeof a), 0)
        << "registered metrics do not cover every byte of FrameAccounting";
}

TEST(Metrics, DrawTimingRoundTrips)
{
    DrawTiming a = filled<DrawTiming>();
    std::stringstream ss;
    writeMetrics(ss, a);
    DrawTiming b{};
    StreamReader r(ss);
    ASSERT_TRUE(readMetrics(r, b));
    EXPECT_TRUE(metricsEqual(a, b));
    EXPECT_EQ(std::memcmp(&a, &b, sizeof a), 0);
}

TEST(Metrics, TruncatedStreamSoftFails)
{
    FrameAccounting a = filled<FrameAccounting>();
    std::stringstream ss;
    writeMetrics(ss, a);
    std::string bytes = ss.str();
    ASSERT_GT(bytes.size(), 8u);

    // Every truncation point between 0 and one-word-short must soft-fail
    // (return false), never throw or misparse.
    for (std::size_t cut : {std::size_t{0}, std::size_t{3}, std::size_t{8},
                            bytes.size() - 8, bytes.size() - 1}) {
        std::stringstream in(bytes.substr(0, cut));
        FrameAccounting b{};
        StreamReader r(in);
        EXPECT_FALSE(readMetrics(r, b)) << "cut at " << cut;
    }
}

TEST(Metrics, PerturbingEachFieldIsDetectedAndNamed)
{
    FrameAccounting base = filled<FrameAccounting>();
    std::vector<MetricSample> samples = collectMetrics(base);

    for (std::size_t i = 0; i < samples.size(); ++i) {
        FrameAccounting mutated = base;
        PerturbOne p{i};
        FrameAccounting::visitMetrics(mutated, p);

        EXPECT_FALSE(metricsEqual(base, mutated)) << samples[i].name;
        std::vector<std::string> diff = metricsDiff(base, mutated);
        ASSERT_EQ(diff.size(), 1u) << samples[i].name;
        EXPECT_EQ(diff[0], samples[i].name);
    }
}

TEST(Metrics, RegisteredNamesAreUnique)
{
    std::set<std::string> names;
    for (const MetricSample &s : collectMetrics(FrameAccounting{}))
        EXPECT_TRUE(names.insert(s.name).second)
            << "duplicate metric name: " << s.name;
}

TEST(Metrics, SchemaFingerprintsSeparateStructs)
{
    std::set<std::uint64_t> fps = {
        metricSchemaFingerprint<FrameAccounting>(),
        metricSchemaFingerprint<DrawTiming>(),
        metricSchemaFingerprint<TrafficStats>(),
        metricSchemaFingerprint<CycleBreakdown>(),
        metricSchemaFingerprint<DrawStats>(),
    };
    EXPECT_EQ(fps.size(), 5u);

    // Deterministic: the fingerprint is a pure function of the schema.
    EXPECT_EQ(metricSchemaFingerprint<FrameAccounting>(),
              metricSchemaFingerprint<FrameAccounting>());
}

TEST(Metrics, OperatorPlusEqualsMatchesRegistry)
{
    // The satellite operator+= implementations must cover exactly the
    // registered fields: summing a filled value into a default one must
    // reproduce the filled value for every additive struct.
    TrafficStats t = filled<TrafficStats>();
    TrafficStats sum{};
    sum += t;
    EXPECT_TRUE(metricsEqual(sum, t));

    CycleBreakdown c = filled<CycleBreakdown>();
    CycleBreakdown csum{};
    csum += c;
    EXPECT_TRUE(metricsEqual(csum, c));
}

} // namespace
} // namespace chopin

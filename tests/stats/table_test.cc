#include <gtest/gtest.h>

#include <sstream>

#include "stats/table.hh"

namespace chopin
{
namespace
{

TEST(TextTable, AlignsColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer-name", "22"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    // Header, rule, two rows.
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
    // Every line is equally... at least each data line starts at column 0
    // and "value" entries align: find both rows' second column position.
    auto line_of = [&](const std::string &needle) {
        auto pos = out.find(needle);
        auto start = out.rfind('\n', pos);
        return out.substr(start + 1, out.find('\n', pos) - start - 1);
    };
    std::string row_a = line_of("a ");
    std::string row_b = line_of("longer-name");
    EXPECT_EQ(row_a.find('1'), row_b.find("22"));
}

TEST(TextTable, CsvOutput)
{
    TextTable t({"x", "y"});
    t.addRow({"1", "2"});
    t.addRow({"3", "4"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "x,y\n1,2\n3,4\n");
}

TEST(TextTable, RowCount)
{
    TextTable t({"a"});
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"r"});
    EXPECT_EQ(t.rows(), 1u);
}

TEST(TextTableDeath, WrongRowWidthPanics)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

TEST(Format, FormatDouble)
{
    EXPECT_EQ(formatDouble(1.23456, 2), "1.23");
    EXPECT_EQ(formatDouble(1.0, 3), "1.000");
    EXPECT_EQ(formatDouble(-0.5, 1), "-0.5");
}

TEST(Format, FormatMb)
{
    EXPECT_EQ(formatMb(1024 * 1024), "1.00");
    EXPECT_EQ(formatMb(1536 * 1024), "1.50");
}

} // namespace
} // namespace chopin

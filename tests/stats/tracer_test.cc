/**
 * @file
 * Timeline tracer tests: the Chrome trace-event JSON export is golden-file
 * stable (byte-for-byte, so the parallel-determinism gate can diff trace
 * files across --jobs values), track registration is idempotent, and the
 * escaping path survives hostile span names.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/tracer.hh"

namespace chopin
{
namespace
{

TEST(Tracer, TrackRegistrationIsIdempotent)
{
    Tracer tr;
    Tracer::TrackId a = tr.track("gpu0.geom");
    Tracer::TrackId b = tr.track("net.egress");
    EXPECT_NE(a, b);
    EXPECT_EQ(tr.track("gpu0.geom"), a);
    EXPECT_EQ(tr.track("net.egress"), b);
}

TEST(Tracer, ExportMatchesGoldenJson)
{
    Tracer tr;
    Tracer::TrackId geom = tr.track("gpu0.geom");
    Tracer::TrackId net = tr.track("net.egress");
    tr.span(geom, "draw", "draw0", 0, 100);
    tr.span(net, "xfer", "comp", 50, 80, {{"bytes", 4096}, {"dst", 3}});
    tr.span(geom, "draw", "draw1", 100, 100); // zero-length: kept

    // The golden string pins the whole format: metadata first in track
    // registration order, then spans in emission order, integer ts/dur.
    // Any change here changes every archived trace — bump deliberately.
    const std::string golden =
        "{\"traceEvents\":[\n"
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
        "\"args\":{\"name\":\"gpu0.geom\"}},\n"
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,"
        "\"args\":{\"name\":\"net.egress\"}},\n"
        "{\"name\":\"draw0\",\"cat\":\"draw\",\"ph\":\"X\",\"ts\":0,"
        "\"dur\":100,\"pid\":1,\"tid\":1},\n"
        "{\"name\":\"comp\",\"cat\":\"xfer\",\"ph\":\"X\",\"ts\":50,"
        "\"dur\":30,\"pid\":1,\"tid\":2,"
        "\"args\":{\"bytes\":4096,\"dst\":3}},\n"
        "{\"name\":\"draw1\",\"cat\":\"draw\",\"ph\":\"X\",\"ts\":100,"
        "\"dur\":0,\"pid\":1,\"tid\":1}\n"
        "]}\n";

    std::ostringstream os;
    tr.exportChromeJson(os);
    EXPECT_EQ(os.str(), golden);

    // Re-export is bit-identical (no internal state mutates on export).
    std::ostringstream again;
    tr.exportChromeJson(again);
    EXPECT_EQ(again.str(), os.str());
}

TEST(Tracer, EmptyTracerExportsEmptyEventList)
{
    Tracer tr;
    std::ostringstream os;
    tr.exportChromeJson(os);
    EXPECT_EQ(os.str(), "{\"traceEvents\":[\n]}\n");
    EXPECT_EQ(tr.spanCount(), 0u);
}

TEST(Tracer, ClearSpansKeepsTracks)
{
    Tracer tr;
    Tracer::TrackId t = tr.track("sfr.phases");
    tr.span(t, "phase", "sync", 10, 20);
    EXPECT_EQ(tr.spanCount(), 1u);
    tr.clearSpans();
    EXPECT_EQ(tr.spanCount(), 0u);
    EXPECT_EQ(tr.track("sfr.phases"), t);

    std::ostringstream os;
    tr.exportChromeJson(os);
    EXPECT_NE(os.str().find("sfr.phases"), std::string::npos);
    EXPECT_EQ(os.str().find("\"ph\":\"X\""), std::string::npos);
}

TEST(Tracer, JsonEscapesHostileNames)
{
    Tracer tr;
    Tracer::TrackId t = tr.track("quote\"back\\slash");
    tr.span(t, "cat", "line\nbreak\ttab\x01", 0, 1);

    std::ostringstream os;
    tr.exportChromeJson(os);
    std::string out = os.str();
    EXPECT_NE(out.find("quote\\\"back\\\\slash"), std::string::npos);
    EXPECT_NE(out.find("line\\nbreak\\ttab\\u0001"), std::string::npos);
    // No raw control characters may survive into the JSON bytes.
    for (char c : out)
        EXPECT_FALSE(static_cast<unsigned char>(c) < 0x20 && c != '\n');
}

} // namespace
} // namespace chopin

#include <gtest/gtest.h>

#include <vector>

#include "comp/algorithms.hh"
#include "util/rng.hh"

namespace chopin
{
namespace
{

/** Random sparse sub-images: most pixels background, some written. */
std::vector<DepthImage>
randomSubImages(Rng &rng, int n, int w, int h, double fill = 0.4)
{
    std::vector<DepthImage> subs;
    for (int i = 0; i < n; ++i) {
        DepthImage img(w, h);
        for (int y = 0; y < h; ++y) {
            for (int x = 0; x < w; ++x) {
                if (!rng.nextBool(fill))
                    continue;
                img.set(x, y,
                        {{rng.nextFloat(), rng.nextFloat(), rng.nextFloat(),
                          1.0f},
                         rng.nextFloat(),
                         static_cast<DrawId>(rng.nextBounded(1000))});
            }
        }
        subs.push_back(std::move(img));
    }
    return subs;
}

void
expectSame(const DepthImage &a, const DepthImage &b)
{
    ASSERT_EQ(a.width(), b.width());
    ASSERT_EQ(a.height(), b.height());
    for (int y = 0; y < a.height(); ++y) {
        for (int x = 0; x < a.width(); ++x) {
            OpaquePixel pa = a.at(x, y);
            OpaquePixel pb = b.at(x, y);
            ASSERT_EQ(pa.depth, pb.depth) << x << "," << y;
            ASSERT_EQ(pa.writer, pb.writer) << x << "," << y;
            ASSERT_EQ(pa.color, pb.color) << x << "," << y;
        }
    }
}

class AlgorithmEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(AlgorithmEquivalence, AllAlgorithmsProduceTheSameImage)
{
    int n = GetParam();
    Rng rng(100 + n);
    auto subs = randomSubImages(rng, n, 32, 24);
    DepthImage serial = composeSerialSink(subs, DepthFunc::LessEqual);
    DepthImage direct = composeDirectSend(subs, DepthFunc::LessEqual);
    expectSame(serial, direct);
    if ((n & (n - 1)) == 0) {
        DepthImage swap = composeBinarySwap(subs, DepthFunc::LessEqual);
        expectSame(serial, swap);
    }
}

INSTANTIATE_TEST_SUITE_P(Ranks, AlgorithmEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16));

TEST(Algorithms, SingleImagePassesThrough)
{
    Rng rng(7);
    auto subs = randomSubImages(rng, 1, 8, 8);
    DepthImage out = composeSerialSink(subs, DepthFunc::Less);
    expectSame(out, subs[0]);
}

TEST(Algorithms, SerialSinkTrafficIsFullImages)
{
    Rng rng(8);
    auto subs = randomSubImages(rng, 4, 16, 16);
    CompositionTraffic t;
    composeSerialSink(subs, DepthFunc::Less, &t);
    Bytes image_bytes = 16 * 16 * bytesPerOpaquePixel;
    EXPECT_EQ(t.total_bytes, 3 * image_bytes);
    EXPECT_EQ(t.transfers, 3u);
    EXPECT_EQ(t.max_link_bytes, image_bytes);
}

TEST(Algorithms, DirectSendBalancesLinkLoad)
{
    Rng rng(9);
    int n = 8;
    auto subs = randomSubImages(rng, n, 16, 64);
    CompositionTraffic serial, direct;
    composeSerialSink(subs, DepthFunc::Less, &serial);
    composeDirectSend(subs, DepthFunc::Less, &direct);
    // Direct-send moves roughly the same total volume but in per-region
    // messages, so the heaviest single transfer is ~n times smaller.
    EXPECT_EQ(direct.transfers, static_cast<std::uint32_t>(n * (n - 1)));
    EXPECT_LT(direct.max_link_bytes, serial.max_link_bytes);
    EXPECT_LE(direct.max_link_bytes * (n - 1), serial.total_bytes);
}

TEST(Algorithms, BinarySwapTotalTrafficIsLowerThanDirectSend)
{
    Rng rng(10);
    int n = 8;
    auto subs = randomSubImages(rng, n, 16, 64);
    CompositionTraffic direct, swap;
    composeDirectSend(subs, DepthFunc::Less, &direct);
    composeBinarySwap(subs, DepthFunc::Less, &swap);
    // Binary-swap sends sum_k h/2^k per rank vs (n-1)/n * h for direct-send:
    // totals are close, but binary-swap uses fewer, larger messages early.
    EXPECT_LT(swap.transfers, direct.transfers);
    EXPECT_GT(swap.total_bytes, 0u);
}

struct RadixCase
{
    std::vector<unsigned> factors;
};

class RadixKTest : public ::testing::TestWithParam<RadixCase>
{
};

TEST_P(RadixKTest, MatchesSerialSink)
{
    const RadixCase &c = GetParam();
    std::size_t n = 1;
    for (unsigned k : c.factors)
        n *= k;
    Rng rng(200 + static_cast<std::uint64_t>(n));
    auto subs = randomSubImages(rng, static_cast<int>(n), 24, 30);
    DepthImage serial = composeSerialSink(subs, DepthFunc::LessEqual);
    DepthImage radix =
        composeRadixK(subs, DepthFunc::LessEqual, c.factors);
    expectSame(serial, radix);
}

INSTANTIATE_TEST_SUITE_P(
    Factorizations, RadixKTest,
    ::testing::Values(RadixCase{{2}}, RadixCase{{2, 2}},
                      RadixCase{{2, 2, 2}}, RadixCase{{4, 2}},
                      RadixCase{{2, 4}}, RadixCase{{8}}, RadixCase{{3, 3}},
                      RadixCase{{2, 3}}, RadixCase{{16}}),
    [](const auto &info) {
        std::string name = "k";
        for (unsigned k : info.param.factors)
            name += "_" + std::to_string(k);
        return name;
    });

TEST(RadixK, AllTwosMatchesBinarySwapTraffic)
{
    Rng rng(77);
    auto subs = randomSubImages(rng, 8, 16, 32);
    CompositionTraffic swap, radix;
    composeBinarySwap(subs, DepthFunc::Less, &swap);
    const unsigned twos[] = {2, 2, 2};
    composeRadixK(subs, DepthFunc::Less, twos, &radix);
    EXPECT_EQ(radix.total_bytes, swap.total_bytes);
    EXPECT_EQ(radix.transfers, swap.transfers);
}

TEST(RadixK, SingleFactorMatchesDirectSendTraffic)
{
    Rng rng(78);
    auto subs = randomSubImages(rng, 8, 16, 32);
    CompositionTraffic direct, radix;
    composeDirectSend(subs, DepthFunc::Less, &direct);
    const unsigned whole[] = {8};
    composeRadixK(subs, DepthFunc::Less, whole, &radix);
    EXPECT_EQ(radix.transfers, direct.transfers);
    EXPECT_EQ(radix.total_bytes, direct.total_bytes);
}

TEST(RadixK, FactorizationTradesMessageCountAgainstSize)
{
    Rng rng(79);
    auto subs = randomSubImages(rng, 16, 16, 64);
    CompositionTraffic fine, coarse;
    const unsigned twos[] = {2, 2, 2, 2};
    const unsigned fours[] = {4, 4};
    composeRadixK(subs, DepthFunc::Less, twos, &fine);
    composeRadixK(subs, DepthFunc::Less, fours, &coarse);
    EXPECT_LT(fine.transfers, coarse.transfers);
    EXPECT_GT(fine.max_link_bytes, coarse.max_link_bytes);
}

TEST(RadixKDeath, WrongFactorizationPanics)
{
    Rng rng(80);
    auto subs = randomSubImages(rng, 8, 8, 8);
    const unsigned bad[] = {2, 2};
    EXPECT_DEATH(composeRadixK(subs, DepthFunc::Less, bad),
                 "factors multiply");
}

TEST(Algorithms, GreaterFuncSelectsFarthest)
{
    DepthImage a(2, 1), b(2, 1);
    a.set(0, 0, {{1, 0, 0, 1}, 0.3f, 0});
    b.set(0, 0, {{0, 1, 0, 1}, 0.7f, 1});
    std::vector<DepthImage> subs{a, b};
    DepthImage out = composeDirectSend(subs, DepthFunc::GreaterEqual);
    EXPECT_EQ(out.at(0, 0).writer, 1u);
    EXPECT_FLOAT_EQ(out.at(0, 0).depth, 0.7f);
}

class TransparentLayersTest : public ::testing::TestWithParam<BlendOp>
{
};

TEST_P(TransparentLayersTest, AnyBracketingMatchesLeftFold)
{
    BlendOp op = GetParam();
    Rng rng(40 + static_cast<int>(op));
    int w = 16, h = 12;
    std::vector<Image> layers;
    for (int i = 0; i < 6; ++i) {
        Image l(w, h, transparentIdentity(op));
        for (int y = 0; y < h; ++y)
            for (int x = 0; x < w; ++x)
                if (rng.nextBool(0.5))
                    l.at(x, y) = {rng.nextFloat() * 0.8f,
                                  rng.nextFloat() * 0.8f,
                                  rng.nextFloat() * 0.8f, rng.nextFloat()};
        layers.push_back(std::move(l));
    }
    Image fold = composeTransparentLayers(layers, op, 0);
    for (std::size_t split = 1; split < layers.size(); ++split) {
        Image bracketed = composeTransparentLayers(layers, op, split);
        ImageDiff diff = compareImages(fold, bracketed, 1e-5f);
        EXPECT_EQ(diff.differing_pixels, 0)
            << toString(op) << " split " << split << " max diff "
            << diff.max_abs_diff;
    }
}

INSTANTIATE_TEST_SUITE_P(Ops, TransparentLayersTest,
                         ::testing::Values(BlendOp::Over, BlendOp::Additive,
                                           BlendOp::Multiply),
                         [](const auto &info) {
                             return toString(info.param);
                         });

} // namespace
} // namespace chopin

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "comp/operators.hh"
#include "gfx/surface.hh"
#include "util/rng.hh"

namespace chopin
{
namespace
{

TEST(OpaqueWins, SmallerDepthWinsUnderLess)
{
    OpaquePixel near_px{{1, 0, 0, 1}, 0.2f, 5};
    OpaquePixel far_px{{0, 1, 0, 1}, 0.8f, 3};
    EXPECT_TRUE(opaqueWins(DepthFunc::Less, near_px, far_px));
    EXPECT_FALSE(opaqueWins(DepthFunc::Less, far_px, near_px));
}

TEST(OpaqueWins, LargerDepthWinsUnderGreater)
{
    OpaquePixel near_px{{}, 0.2f, 5};
    OpaquePixel far_px{{}, 0.8f, 3};
    EXPECT_TRUE(opaqueWins(DepthFunc::Greater, far_px, near_px));
    EXPECT_FALSE(opaqueWins(DepthFunc::Greater, near_px, far_px));
}

TEST(OpaqueWins, DepthTieStrictKeepsEarliestWriter)
{
    OpaquePixel early{{}, 0.5f, 2};
    OpaquePixel late{{}, 0.5f, 9};
    // Under Less, the later equal-depth fragment would have failed the
    // in-order test, so the earlier writer must win.
    EXPECT_TRUE(opaqueWins(DepthFunc::Less, early, late));
    EXPECT_FALSE(opaqueWins(DepthFunc::Less, late, early));
}

TEST(OpaqueWins, DepthTieAcceptingKeepsLatestWriter)
{
    OpaquePixel early{{}, 0.5f, 2};
    OpaquePixel late{{}, 0.5f, 9};
    EXPECT_TRUE(opaqueWins(DepthFunc::LessEqual, late, early));
    EXPECT_FALSE(opaqueWins(DepthFunc::LessEqual, early, late));
}

TEST(OpaqueWins, AlwaysKeepsLatestWriterRegardlessOfDepth)
{
    OpaquePixel early{{}, 0.1f, 2};
    OpaquePixel late{{}, 0.9f, 9};
    EXPECT_TRUE(opaqueWins(DepthFunc::Always, late, early));
    EXPECT_FALSE(opaqueWins(DepthFunc::Always, early, late));
}

TEST(OpaqueWins, BackgroundLosesToAnyRealWriter)
{
    OpaquePixel bg{{}, 0.5f, ~DrawId(0)};
    OpaquePixel drawn{{}, 0.5f, 0};
    EXPECT_TRUE(opaqueWins(DepthFunc::Always, drawn, bg));
    EXPECT_TRUE(opaqueWins(DepthFunc::LessEqual, drawn, bg));
}

TEST(OpaqueWins, ComposableFuncClassification)
{
    EXPECT_TRUE(composableDepthFunc(DepthFunc::Less));
    EXPECT_TRUE(composableDepthFunc(DepthFunc::LessEqual));
    EXPECT_TRUE(composableDepthFunc(DepthFunc::Greater));
    EXPECT_TRUE(composableDepthFunc(DepthFunc::GreaterEqual));
    EXPECT_TRUE(composableDepthFunc(DepthFunc::Always));
    EXPECT_FALSE(composableDepthFunc(DepthFunc::Equal));
    EXPECT_FALSE(composableDepthFunc(DepthFunc::NotEqual));
    EXPECT_FALSE(composableDepthFunc(DepthFunc::Never));
}

/**
 * The core soundness property behind CHOPIN's out-of-order composition:
 * folding contributions with composeOpaque in ANY order produces exactly
 * what in-order rendering (apply each fragment in draw order through the
 * depth test) would produce.
 */
struct OrderCase
{
    DepthFunc func;
    std::uint64_t seed;
};

class OutOfOrderEquivalence : public ::testing::TestWithParam<OrderCase>
{
};

TEST_P(OutOfOrderEquivalence, FoldAnyOrderMatchesInOrderRendering)
{
    auto [func, seed] = GetParam();
    Rng rng(seed);

    for (int trial = 0; trial < 200; ++trial) {
        int k = 1 + static_cast<int>(rng.nextBounded(6));
        std::vector<OpaquePixel> contribs;
        for (int i = 0; i < k; ++i) {
            // Coarse depths make ties common (the hard case).
            float z = static_cast<float>(rng.nextBounded(4)) / 4.0f;
            contribs.push_back(
                {{rng.nextFloat(), rng.nextFloat(), rng.nextFloat(), 1.0f},
                 z,
                 static_cast<DrawId>(i)});
        }

        // In-order rendering oracle.
        OpaquePixel buffer{{0, 0, 0, 1},
                           prefersSmaller(func) ? 1.0f : 0.0f, ~DrawId(0)};
        if (func == DepthFunc::Always)
            buffer.depth = 1.0f;
        OpaquePixel oracle = buffer;
        for (const OpaquePixel &c : contribs) {
            bool pass = func == DepthFunc::Always ||
                        depthTest(func, c.depth, oracle.depth);
            if (pass)
                oracle = c;
        }

        // Fold in a random permutation.
        std::vector<OpaquePixel> shuffled = contribs;
        for (std::size_t i = shuffled.size(); i > 1; --i)
            std::swap(shuffled[i - 1],
                      shuffled[rng.nextBounded(static_cast<std::uint32_t>(i))]);
        OpaquePixel folded = buffer;
        for (const OpaquePixel &c : shuffled)
            folded = composeOpaque(func, c, folded);

        ASSERT_EQ(folded.writer, oracle.writer)
            << "trial " << trial << " func " << toString(func);
        ASSERT_EQ(folded.depth, oracle.depth);
    }
}

INSTANTIATE_TEST_SUITE_P(
    FuncsAndSeeds, OutOfOrderEquivalence,
    ::testing::Values(OrderCase{DepthFunc::Less, 1},
                      OrderCase{DepthFunc::Less, 2},
                      OrderCase{DepthFunc::LessEqual, 3},
                      OrderCase{DepthFunc::LessEqual, 4},
                      OrderCase{DepthFunc::Greater, 5},
                      OrderCase{DepthFunc::GreaterEqual, 6},
                      OrderCase{DepthFunc::Always, 7}),
    [](const auto &info) {
        return toString(info.param.func) + "_" +
               std::to_string(info.param.seed);
    });

// ---- Transparent operators ------------------------------------------------

Color
randColor(Rng &rng)
{
    return {rng.nextFloat(), rng.nextFloat(), rng.nextFloat(),
            rng.nextFloat()};
}

class TransparentOpTest : public ::testing::TestWithParam<BlendOp>
{
};

TEST_P(TransparentOpTest, IdentityIsNeutral)
{
    BlendOp op = GetParam();
    Rng rng(11);
    Color id = transparentIdentity(op);
    for (int i = 0; i < 100; ++i) {
        Color c = randColor(rng);
        Color front = mergeTransparent(op, id, c);
        Color back = mergeTransparent(op, c, id);
        EXPECT_LT(maxAbsDiff(front, c), 1e-6f);
        EXPECT_LT(maxAbsDiff(back, c), 1e-6f);
    }
}

TEST_P(TransparentOpTest, MergeIsAssociative)
{
    BlendOp op = GetParam();
    Rng rng(13 + static_cast<int>(op));
    for (int i = 0; i < 500; ++i) {
        Color a = randColor(rng), b = randColor(rng), c = randColor(rng);
        // (a . b) . c == a . (b . c), with a frontmost.
        Color left = mergeTransparent(op, mergeTransparent(op, a, b), c);
        Color right = mergeTransparent(op, a, mergeTransparent(op, b, c));
        EXPECT_LT(maxAbsDiff(left, right), 2e-6f);
    }
}

TEST_P(TransparentOpTest, FinalizeMatchesMergeOntoOpaqueBackground)
{
    BlendOp op = GetParam();
    Rng rng(17 + static_cast<int>(op));
    for (int i = 0; i < 200; ++i) {
        Color acc = randColor(rng);
        Color bg = randColor(rng);
        bg.a = 1.0f;
        Color fin = finalizeTransparent(op, acc, bg);
        Color merged = mergeTransparent(op, acc, bg);
        // Finalize preserves the framebuffer's alpha convention for the
        // commutative operators; only rgb must agree with a plain merge.
        EXPECT_NEAR(fin.r, merged.r, 1e-6f);
        EXPECT_NEAR(fin.g, merged.g, 1e-6f);
        EXPECT_NEAR(fin.b, merged.b, 1e-6f);
        if (op == BlendOp::Over) {
            EXPECT_NEAR(fin.a, merged.a, 1e-6f);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Ops, TransparentOpTest,
                         ::testing::Values(BlendOp::Over, BlendOp::Additive,
                                           BlendOp::Multiply),
                         [](const auto &info) {
                             return toString(info.param);
                         });

TEST(TransparentOps, OverIsNotCommutative)
{
    Color a{0.8f, 0.1f, 0.1f, 0.7f};
    Color b{0.1f, 0.8f, 0.1f, 0.5f};
    Color ab = mergeTransparent(BlendOp::Over, a, b);
    Color ba = mergeTransparent(BlendOp::Over, b, a);
    EXPECT_GT(maxAbsDiff(ab, ba), 0.01f);
}

TEST(TransparentOps, AdditiveAndMultiplyAreCommutative)
{
    Rng rng(23);
    for (int i = 0; i < 100; ++i) {
        Color a = randColor(rng), b = randColor(rng);
        for (BlendOp op : {BlendOp::Additive, BlendOp::Multiply}) {
            Color ab = mergeTransparent(op, a, b);
            Color ba = mergeTransparent(op, b, a);
            // Alpha channel carries the back coverage, compare rgb only.
            EXPECT_NEAR(ab.r, ba.r, 1e-6f);
            EXPECT_NEAR(ab.g, ba.g, 1e-6f);
            EXPECT_NEAR(ab.b, ba.b, 1e-6f);
        }
    }
}

TEST(TransparentOps, OverMatchesSequentialBlend)
{
    // Folding premultiplied partial composites then finalizing over the
    // background must match blending straight-alpha fragments in order.
    Rng rng(29);
    for (int trial = 0; trial < 100; ++trial) {
        Color bg{rng.nextFloat(), rng.nextFloat(), rng.nextFloat(), 1.0f};
        std::vector<Color> frags;
        for (int i = 0; i < 4; ++i)
            frags.push_back(randColor(rng));

        // Reference: sequential source-over blending onto the background.
        Color ref = bg;
        for (const Color &f : frags)
            ref = blendPixel(BlendOp::Over, f, ref);

        // CHOPIN-style: accumulate premultiplied, split at a random point,
        // merge the halves, finalize over the background.
        auto accumulate = [&](int lo, int hi) {
            Color acc = transparentIdentity(BlendOp::Over);
            for (int i = hi - 1; i >= lo; --i) {
                Color premul{frags[i].r * frags[i].a,
                             frags[i].g * frags[i].a,
                             frags[i].b * frags[i].a, frags[i].a};
                acc = mergeTransparent(BlendOp::Over, acc, premul);
            }
            return acc;
        };
        int split = 1 + static_cast<int>(rng.nextBounded(3));
        Color merged = mergeTransparent(BlendOp::Over, accumulate(split, 4),
                                        accumulate(0, split));
        Color out = finalizeTransparent(BlendOp::Over, merged, bg);
        EXPECT_LT(maxAbsDiff(out, ref), 1e-5f) << "trial " << trial;
    }
}

} // namespace
} // namespace chopin

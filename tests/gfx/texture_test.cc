#include <gtest/gtest.h>

#include "gfx/renderer.hh"
#include "sfr/schemes.hh"
#include "trace/generator.hh"

namespace chopin
{
namespace
{

DrawInput
quadInput(std::vector<Triangle> &storage, const Image *texture = nullptr)
{
    storage.clear();
    Triangle t1, t2;
    Color c{0.5f, 1.0f, 0.25f, 1.0f};
    t1.v[0] = {{-1, -1, 0}, c};
    t1.v[1] = {{-1, 1, 0}, c};
    t1.v[2] = {{1, -1, 0}, c};
    t2.v[0] = {{1, -1, 0}, c};
    t2.v[1] = {{-1, 1, 0}, c};
    t2.v[2] = {{1, 1, 0}, c};
    storage.push_back(t1);
    storage.push_back(t2);
    DrawInput in;
    in.triangles = storage;
    in.mvp = Mat4::identity();
    in.texture = texture;
    return in;
}

TEST(Texture, ModulatesInterpolatedColor)
{
    Viewport vp{16, 16};
    Image tex(16, 16, {0.5f, 0.5f, 0.5f, 1.0f});
    tex.at(3, 4) = {0.0f, 1.0f, 1.0f, 1.0f};
    Surface s(vp.width, vp.height);
    std::vector<Triangle> tris;
    DrawStats stats = renderDraw(s, vp, quadInput(tris, &tex));
    EXPECT_EQ(stats.frags_textured, 256u);
    // Vertex color (0.5, 1, 0.25) x texel:
    EXPECT_NEAR(s.color().at(0, 0).r, 0.25f, 1e-5f);
    EXPECT_NEAR(s.color().at(0, 0).g, 0.5f, 1e-5f);
    EXPECT_NEAR(s.color().at(3, 4).r, 0.0f, 1e-5f);
    EXPECT_NEAR(s.color().at(3, 4).g, 1.0f, 1e-5f);
}

TEST(Texture, NoTextureMeansNoTexCost)
{
    Viewport vp{16, 16};
    Surface s(vp.width, vp.height);
    std::vector<Triangle> tris;
    DrawStats stats = renderDraw(s, vp, quadInput(tris));
    EXPECT_EQ(stats.frags_textured, 0u);
}

TEST(Texture, TexturedFragmentsCostTexCycles)
{
    TimingParams p;
    DrawStats plain;
    plain.frags_generated = 10000;
    plain.frags_shaded = 10000;
    plain.frags_written = 10000;
    DrawStats textured = plain;
    textured.frags_textured = 10000;
    EXPECT_GT(p.fragmentCycles(textured), p.fragmentCycles(plain));
}

TEST(Texture, GeneratorEmitsRtComposites)
{
    FrameTrace t = generateBenchmark("mirror", 4);
    int composites = 0;
    for (const DrawCommand &d : t.draws) {
        if (d.texture_rt < 0)
            continue;
        ++composites;
        // A composite samples an intermediate target and draws to another.
        EXPECT_GT(d.texture_rt, 0);
        EXPECT_NE(static_cast<std::uint32_t>(d.texture_rt),
                  d.state.render_target);
        EXPECT_LT(static_cast<std::uint32_t>(d.texture_rt),
                  t.num_render_targets);
    }
    EXPECT_GE(composites, 1);
}

TEST(Texture, CompositeContentReachesTheFinalImage)
{
    // Rendering with and without the intermediate-RT draws must differ:
    // the composites carry RT content into the frame, so the consistency
    // sync is load-bearing.
    FrameTrace with_rt = generateBenchmark("mirror", 8);
    FrameTrace without = with_rt;
    for (DrawCommand &d : without.draws)
        if (d.state.render_target != 0)
            d.triangles.clear(); // empty the RT passes
    SystemConfig cfg;
    FrameResult a = runSingleGpu(cfg, with_rt);
    FrameResult b = runSingleGpu(cfg, without);
    EXPECT_GT(compareImages(a.image, b.image).differing_pixels, 0);
}

TEST(Texture, OracleHoldsForSamplingDrawsAcrossSchemes)
{
    FrameTrace trace = generateBenchmark("ut3", 16);
    SystemConfig cfg;
    cfg.num_gpus = 8;
    FrameResult reference = runSingleGpu(cfg, trace);
    for (Scheme s : {Scheme::Duplication, Scheme::ChopinCompSched}) {
        FrameResult r = runScheme(s, cfg, trace);
        EXPECT_EQ(compareImages(reference.image, r.image, 2e-4f)
                      .differing_pixels,
                  0)
            << toString(s);
    }
}

} // namespace
} // namespace chopin

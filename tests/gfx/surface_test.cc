#include <gtest/gtest.h>

#include "gfx/surface.hh"

namespace chopin
{
namespace
{

Fragment
frag(int x, int y, float z, Color c = {1, 1, 1, 1})
{
    return {x, y, z, c};
}

RasterState
opaqueState(DepthFunc func = DepthFunc::LessEqual)
{
    RasterState s;
    s.depth_func = func;
    return s;
}

TEST(Surface, ClearResetsEverything)
{
    Surface s(4, 4);
    DrawStats stats;
    s.applyFragment(frag(1, 1, 0.5f), opaqueState(), 7, 0.5f, stats);
    s.clear({0, 0, 0, 0}, 1.0f);
    EXPECT_FALSE(s.writtenAt(1, 1));
    EXPECT_EQ(s.writerAt(1, 1), noWriter);
    EXPECT_FLOAT_EQ(s.depthAt(1, 1), 1.0f);
}

TEST(Surface, OpaqueWriteUpdatesAllBuffers)
{
    Surface s(4, 4);
    DrawStats stats;
    s.applyFragment(frag(2, 3, 0.25f, {0.5f, 0.25f, 0.75f, 0.5f}),
                    opaqueState(), 9, 0.5f, stats);
    EXPECT_TRUE(s.writtenAt(2, 3));
    EXPECT_EQ(s.writerAt(2, 3), 9u);
    EXPECT_FLOAT_EQ(s.depthAt(2, 3), 0.25f);
    EXPECT_FLOAT_EQ(s.color().at(2, 3).a, 1.0f); // opaque forces alpha 1
    EXPECT_EQ(stats.frags_early_pass, 1u);
    EXPECT_EQ(stats.frags_written, 1u);
}

/** Depth-function truth table at the fragment level. */
struct DepthCase
{
    DepthFunc func;
    bool pass_closer;
    bool pass_equal;
    bool pass_farther;
};

class DepthFuncTest : public ::testing::TestWithParam<DepthCase>
{
};

TEST_P(DepthFuncTest, FragmentPassMatchesFunction)
{
    DepthCase c = GetParam();
    auto passes = [&](float z_new) {
        Surface s(2, 2);
        DrawStats st;
        s.applyFragment(frag(0, 0, 0.5f), opaqueState(DepthFunc::Always), 0,
                        0.5f, st);
        DrawStats st2;
        s.applyFragment(frag(0, 0, z_new), opaqueState(c.func), 1, 0.5f,
                        st2);
        return s.writerAt(0, 0) == 1u;
    };
    EXPECT_EQ(passes(0.25f), c.pass_closer) << toString(c.func);
    EXPECT_EQ(passes(0.5f), c.pass_equal) << toString(c.func);
    EXPECT_EQ(passes(0.75f), c.pass_farther) << toString(c.func);
}

INSTANTIATE_TEST_SUITE_P(
    AllFuncs, DepthFuncTest,
    ::testing::Values(DepthCase{DepthFunc::Never, false, false, false},
                      DepthCase{DepthFunc::Less, true, false, false},
                      DepthCase{DepthFunc::Equal, false, true, false},
                      DepthCase{DepthFunc::LessEqual, true, true, false},
                      DepthCase{DepthFunc::Greater, false, false, true},
                      DepthCase{DepthFunc::NotEqual, true, false, true},
                      DepthCase{DepthFunc::GreaterEqual, false, true, true},
                      DepthCase{DepthFunc::Always, true, true, true}),
    [](const auto &info) { return toString(info.param.func); });

TEST(Surface, EarlyZCullsBeforeShading)
{
    Surface s(2, 2);
    DrawStats st;
    s.applyFragment(frag(0, 0, 0.2f), opaqueState(), 0, 0.5f, st);
    DrawStats st2;
    s.applyFragment(frag(0, 0, 0.8f), opaqueState(), 1, 0.5f, st2);
    EXPECT_EQ(st2.frags_early_fail, 1u);
    EXPECT_EQ(st2.frags_shaded, 0u); // culled fragments are never shaded
}

TEST(Surface, ShaderDiscardForcesLateZ)
{
    Surface s(2, 2);
    DrawStats st;
    s.applyFragment(frag(0, 0, 0.2f), opaqueState(), 0, 0.5f, st);
    RasterState late = opaqueState();
    late.shader_discard = true;
    DrawStats st2;
    s.applyFragment(frag(0, 0, 0.8f, {1, 1, 1, 0.9f}), late, 1, 0.5f, st2);
    EXPECT_EQ(st2.frags_early_fail, 0u);
    EXPECT_EQ(st2.frags_shaded, 1u); // shaded despite being occluded
    EXPECT_EQ(st2.frags_late_fail, 1u);
    EXPECT_EQ(s.writerAt(0, 0), 0u);
}

TEST(Surface, AlphaTestDiscardsLowAlpha)
{
    Surface s(2, 2);
    RasterState st = opaqueState();
    st.shader_discard = true;
    DrawStats stats;
    s.applyFragment(frag(0, 0, 0.5f, {1, 1, 1, 0.2f}), st, 3, 0.5f, stats);
    EXPECT_FALSE(s.writtenAt(0, 0));
    EXPECT_EQ(stats.frags_shaded, 1u);
    EXPECT_EQ(stats.frags_written, 0u);
}

TEST(Surface, DepthWriteDisabledKeepsDepth)
{
    Surface s(2, 2);
    RasterState st = opaqueState();
    st.depth_write = false;
    DrawStats stats;
    s.applyFragment(frag(0, 0, 0.25f), st, 0, 0.5f, stats);
    EXPECT_TRUE(s.writtenAt(0, 0));
    EXPECT_FLOAT_EQ(s.depthAt(0, 0), 1.0f); // unchanged
}

TEST(Surface, DepthTestDisabledAlwaysWrites)
{
    Surface s(2, 2);
    RasterState st = opaqueState();
    DrawStats stats;
    s.applyFragment(frag(0, 0, 0.1f), st, 0, 0.5f, stats);
    RasterState no_test = opaqueState();
    no_test.depth_test = false;
    DrawStats stats2;
    s.applyFragment(frag(0, 0, 0.9f), no_test, 1, 0.5f, stats2);
    EXPECT_EQ(s.writerAt(0, 0), 1u);
    EXPECT_FLOAT_EQ(s.depthAt(0, 0), 0.1f); // no depth update either
    EXPECT_EQ(stats2.frags_early_pass + stats2.frags_late_pass, 0u);
}

TEST(SurfaceHash, IdenticalContentHashesEqual)
{
    Surface a(8, 8), b(8, 8);
    a.clear({0.1f, 0.2f, 0.3f, 1.0f}, 1.0f);
    b.clear({0.1f, 0.2f, 0.3f, 1.0f}, 1.0f);
    DrawStats st;
    a.applyFragment(frag(3, 4, 0.5f, {1, 0, 0, 1}), opaqueState(), 2, 0.5f,
                    st);
    b.applyFragment(frag(3, 4, 0.5f, {1, 0, 0, 1}), opaqueState(), 2, 0.5f,
                    st);
    EXPECT_EQ(a.contentHash(), b.contentHash());
    EXPECT_EQ(frameHash(a.color()), frameHash(b.color()));
}

TEST(SurfaceHash, SinglePixelChangeChangesHash)
{
    Surface a(8, 8), b(8, 8);
    a.clear({0, 0, 0, 1}, 1.0f);
    b.clear({0, 0, 0, 1}, 1.0f);
    DrawStats st;
    b.applyFragment(frag(7, 7, 0.5f, {0, 1, 0, 1}), opaqueState(), 0, 0.5f,
                    st);
    EXPECT_NE(a.contentHash(), b.contentHash());
    EXPECT_NE(frameHash(a.color()), frameHash(b.color()));
}

TEST(SurfaceHash, DimensionsFeedTheHash)
{
    // A 2x8 and an 8x2 image with identical bytes must not collide.
    Surface a(2, 8), b(8, 2);
    a.clear({0.5f, 0.5f, 0.5f, 1.0f}, 1.0f);
    b.clear({0.5f, 0.5f, 0.5f, 1.0f}, 1.0f);
    EXPECT_NE(frameHash(a.color()), frameHash(b.color()));
}

TEST(SurfaceHash, DepthOnlyChangeChangesContentHash)
{
    Surface a(4, 4), b(4, 4);
    a.clear({0, 0, 0, 1}, 1.0f);
    b.clear({0, 0, 0, 1}, 0.5f);
    EXPECT_EQ(frameHash(a.color()), frameHash(b.color()));
    EXPECT_NE(a.contentHash(), b.contentHash());
}

TEST(Blend, OverMatchesFormula)
{
    Color src{1.0f, 0.0f, 0.0f, 0.25f};
    Color dst{0.0f, 1.0f, 0.0f, 1.0f};
    Color out = blendPixel(BlendOp::Over, src, dst);
    EXPECT_NEAR(out.r, 0.25f, 1e-6f);
    EXPECT_NEAR(out.g, 0.75f, 1e-6f);
    EXPECT_NEAR(out.a, 1.0f, 1e-6f);
}

TEST(Blend, AdditiveAccumulates)
{
    Color out = blendPixel(BlendOp::Additive, {0.5f, 0.5f, 0.5f, 0.5f},
                           {0.2f, 0.2f, 0.2f, 1.0f});
    EXPECT_NEAR(out.r, 0.45f, 1e-6f);
}

TEST(Blend, MultiplyModulates)
{
    Color out = blendPixel(BlendOp::Multiply, {0.5f, 1.0f, 0.0f, 1.0f},
                           {0.8f, 0.5f, 0.9f, 1.0f});
    EXPECT_NEAR(out.r, 0.4f, 1e-6f);
    EXPECT_NEAR(out.g, 0.5f, 1e-6f);
    EXPECT_NEAR(out.b, 0.0f, 1e-6f);
}

} // namespace
} // namespace chopin

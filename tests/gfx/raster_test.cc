#include <gtest/gtest.h>

#include <map>
#include <set>

#include "gfx/raster.hh"
#include "util/rng.hh"

namespace chopin
{
namespace
{

ScreenTriangle
tri(float x0, float y0, float x1, float y1, float x2, float y2,
    float z = 0.5f)
{
    ScreenTriangle t;
    t.v[0] = {{x0, y0}, z, {1, 0, 0, 1}};
    t.v[1] = {{x1, y1}, z, {0, 1, 0, 1}};
    t.v[2] = {{x2, y2}, z, {0, 0, 1, 1}};
    return t;
}

TEST(Raster, AxisAlignedRightTriangleCoverage)
{
    // Legs from (0,0) to (4,0) to (0,4): covers the pixels strictly inside
    // the hypotenuse; with pixel centers at +0.5 that is 6 pixels.
    Viewport vp{16, 16};
    std::set<std::pair<int, int>> covered;
    rasterizeTriangle(tri(0, 0, 4, 0, 0, 4), vp, [&](const Fragment &f) {
        covered.insert({f.x, f.y});
    });
    std::set<std::pair<int, int>> expected{
        {0, 0}, {1, 0}, {2, 0}, {0, 1}, {1, 1}, {0, 2}};
    EXPECT_EQ(covered, expected);
}

TEST(Raster, FullPixelQuadCoverageCount)
{
    Viewport vp{64, 64};
    // A 8x8-pixel square split into two triangles must cover exactly 64
    // pixels with no double coverage (top-left rule on the shared edge).
    std::map<std::pair<int, int>, int> hits;
    auto sink = [&](const Fragment &f) { hits[{f.x, f.y}] += 1; };
    rasterizeTriangle(tri(8, 8, 16, 8, 8, 16), vp, sink);
    rasterizeTriangle(tri(16, 8, 16, 16, 8, 16), vp, sink);
    EXPECT_EQ(hits.size(), 64u);
    for (const auto &[px, count] : hits)
        EXPECT_EQ(count, 1) << "pixel " << px.first << "," << px.second;
}

TEST(Raster, WindingDoesNotChangeCoverage)
{
    Viewport vp{32, 32};
    std::uint64_t ccw = countCoverage(tri(2, 2, 20, 3, 5, 25), vp);
    std::uint64_t cw = countCoverage(tri(2, 2, 5, 25, 20, 3), vp);
    EXPECT_EQ(ccw, cw);
    EXPECT_GT(ccw, 0u);
}

TEST(Raster, DegenerateTriangleCoversNothing)
{
    Viewport vp{32, 32};
    EXPECT_EQ(countCoverage(tri(1, 1, 5, 5, 9, 9), vp), 0u); // collinear
    EXPECT_EQ(countCoverage(tri(3, 3, 3, 3, 3, 3), vp), 0u); // point
}

TEST(Raster, ClampsToViewport)
{
    Viewport vp{8, 8};
    std::uint64_t n = 0;
    rasterizeTriangle(tri(-100, -100, 300, -100, -100, 300), vp,
                      [&](const Fragment &f) {
                          ++n;
                          ASSERT_GE(f.x, 0);
                          ASSERT_LT(f.x, vp.width);
                          ASSERT_GE(f.y, 0);
                          ASSERT_LT(f.y, vp.height);
                      });
    EXPECT_EQ(n, 64u); // the whole viewport is inside the triangle
}

TEST(Raster, DepthInterpolationAtVertexAndCenter)
{
    Viewport vp{32, 32};
    ScreenTriangle t = tri(0, 0, 16, 0, 0, 16);
    t.v[0].z = 0.0f;
    t.v[1].z = 1.0f;
    t.v[2].z = 1.0f;
    float z_origin = -1.0f;
    rasterizeTriangle(t, vp, [&](const Fragment &f) {
        if (f.x == 0 && f.y == 0)
            z_origin = f.z;
        ASSERT_GE(f.z, 0.0f);
        ASSERT_LE(f.z, 1.0f);
    });
    // Pixel (0,0) center is (0.5,0.5), barely away from vertex 0.
    EXPECT_NEAR(z_origin, 0.0625f, 1e-3f);
}

TEST(Raster, ColorInterpolationIsBarycentric)
{
    Viewport vp{32, 32};
    ScreenTriangle t = tri(0, 0, 16, 0, 0, 16);
    rasterizeTriangle(t, vp, [&](const Fragment &f) {
        float sum = f.color.r + f.color.g + f.color.b;
        ASSERT_NEAR(sum, 1.0f, 1e-4f); // weights sum to one
    });
}

/** Property: a triangulated mesh covers each interior pixel exactly once. */
class FillConventionTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FillConventionTest, SharedEdgesNeverDoubleCover)
{
    Rng rng(GetParam());
    Viewport vp{64, 64};
    // A random convex quad split along its diagonal.
    for (int iter = 0; iter < 20; ++iter) {
        float cx = rng.nextFloat(16, 48), cy = rng.nextFloat(16, 48);
        // Four points in sorted angular order around the center => a
        // convex quad whose diagonal split shares one edge.
        float angles[4];
        for (float &a : angles)
            a = rng.nextFloat(0.0f, 6.2831853f);
        std::sort(std::begin(angles), std::end(angles));
        // A common radius keeps the quad convex (points on a circle), so
        // the diagonal split genuinely partitions it.
        float r = rng.nextFloat(4.0f, 14.0f);
        Vec2 p[4];
        for (int i = 0; i < 4; ++i)
            p[i] = {cx + r * std::cos(angles[i]),
                    cy + r * std::sin(angles[i])};
        std::map<std::pair<int, int>, int> hits;
        auto sink = [&](const Fragment &f) { hits[{f.x, f.y}] += 1; };
        rasterizeTriangle(tri(p[0].x, p[0].y, p[1].x, p[1].y, p[2].x, p[2].y),
                          vp, sink);
        rasterizeTriangle(tri(p[0].x, p[0].y, p[2].x, p[2].y, p[3].x, p[3].y),
                          vp, sink);
        for (const auto &[px, count] : hits)
            ASSERT_EQ(count, 1)
                << "double-covered pixel " << px.first << "," << px.second
                << " (iter " << iter << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FillConventionTest,
                         ::testing::Range<std::uint64_t>(1, 9));

} // namespace
} // namespace chopin

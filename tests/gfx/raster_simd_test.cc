/**
 * @file
 * The SIMD determinism contract, enforced fragment for fragment: the quad
 * rasterizer must produce *bit-identical* output (coverage, order, z and
 * color down to the float bit pattern) at every lane width and on the
 * native vector backend. If any of these tests fails, frame hashes would
 * differ between scalar and SIMD builds — the one thing DESIGN.md §14
 * promises cannot happen.
 *
 * The reference is ScalarLanes<1>: the classic one-pixel-at-a-time loop,
 * compiled from the same templated kernel.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "gfx/raster.hh"
#include "util/rng.hh"

namespace chopin
{
namespace
{

ScreenTriangle
tri(float x0, float y0, float x1, float y1, float x2, float y2)
{
    ScreenTriangle t;
    t.v[0] = {{x0, y0}, 0.25f, {1.0f, 0.125f, 0.0f, 1.0f}};
    t.v[1] = {{x1, y1}, 0.5f, {0.0f, 1.0f, 0.375f, 0.5f}};
    t.v[2] = {{x2, y2}, 0.875f, {0.0625f, 0.0f, 1.0f, 0.75f}};
    return t;
}

template <typename Lanes>
std::vector<Fragment>
rasterAs(const ScreenTriangle &t, const Viewport &vp, const PixelRect &clip)
{
    std::vector<Fragment> out;
    rasterizeTriangleInRectAs<Lanes>(
        t, vp, clip, [&out](const Fragment &f) { out.push_back(f); });
    return out;
}

std::uint32_t
bits(float f)
{
    return std::bit_cast<std::uint32_t>(f);
}

void
expectBitIdentical(const std::vector<Fragment> &ref,
                   const std::vector<Fragment> &got, const char *label)
{
    ASSERT_EQ(ref.size(), got.size()) << label;
    for (std::size_t i = 0; i < ref.size(); ++i) {
        const Fragment &a = ref[i];
        const Fragment &b = got[i];
        ASSERT_EQ(a.x, b.x) << label << " frag " << i;
        ASSERT_EQ(a.y, b.y) << label << " frag " << i;
        ASSERT_EQ(bits(a.z), bits(b.z)) << label << " frag " << i;
        ASSERT_EQ(bits(a.color.r), bits(b.color.r)) << label << " frag " << i;
        ASSERT_EQ(bits(a.color.g), bits(b.color.g)) << label << " frag " << i;
        ASSERT_EQ(bits(a.color.b), bits(b.color.b)) << label << " frag " << i;
        ASSERT_EQ(bits(a.color.a), bits(b.color.a)) << label << " frag " << i;
    }
}

/** Every lane width and the native backend against the width-1 reference. */
void
expectAllWidthsMatch(const ScreenTriangle &t, const Viewport &vp,
                     const PixelRect &clip)
{
    using simd::ScalarLanes;
    std::vector<Fragment> ref = rasterAs<ScalarLanes<1>>(t, vp, clip);
    expectBitIdentical(ref, rasterAs<ScalarLanes<2>>(t, vp, clip), "W=2");
    expectBitIdentical(ref, rasterAs<ScalarLanes<3>>(t, vp, clip), "W=3");
    expectBitIdentical(ref, rasterAs<ScalarLanes<4>>(t, vp, clip), "W=4");
    expectBitIdentical(ref, rasterAs<ScalarLanes<8>>(t, vp, clip), "W=8");
    expectBitIdentical(ref, rasterAs<simd::NativeLanes>(t, vp, clip),
                       simd::kNativeBackend);
}

PixelRect
fullRect(const Viewport &vp)
{
    return {0, 0, vp.width - 1, vp.height - 1};
}

TEST(RasterSimd, RandomTrianglesAllLaneWidths)
{
    // Viewport widths deliberately not multiples of any lane width, so
    // every row ends in a partial quad.
    Viewport vps[] = {{64, 64}, {53, 37}, {31, 9}};
    for (const Viewport &vp : vps) {
        Rng rng(0x5eedu + static_cast<unsigned>(vp.width));
        for (int iter = 0; iter < 60; ++iter) {
            float w = static_cast<float>(vp.width);
            float h = static_cast<float>(vp.height);
            ScreenTriangle t =
                tri(rng.nextFloat(-8.0f, w + 8.0f),
                    rng.nextFloat(-8.0f, h + 8.0f),
                    rng.nextFloat(-8.0f, w + 8.0f),
                    rng.nextFloat(-8.0f, h + 8.0f),
                    rng.nextFloat(-8.0f, w + 8.0f),
                    rng.nextFloat(-8.0f, h + 8.0f));
            expectAllWidthsMatch(t, vp, fullRect(vp));
        }
    }
}

TEST(RasterSimd, SliverTriangles)
{
    Viewport vp{64, 64};
    // Sub-pixel-tall and sub-pixel-wide slivers spanning many quads: the
    // accept mask is sparse and irregular, maximizing masked-lane traffic.
    expectAllWidthsMatch(tri(0.3f, 10.7f, 63.9f, 11.1f, 0.9f, 11.3f), vp,
                         fullRect(vp));
    expectAllWidthsMatch(tri(20.1f, 0.2f, 20.6f, 63.8f, 20.9f, 0.4f), vp,
                         fullRect(vp));
    expectAllWidthsMatch(tri(0.1f, 0.1f, 63.9f, 62.8f, 1.0f, 1.2f), vp,
                         fullRect(vp));
}

TEST(RasterSimd, TopLeftTiesOnPixelCenters)
{
    Viewport vp{32, 32};
    // Vertices at half-integer coordinates put pixel centers *exactly* on
    // the edges (e == 0): coverage is decided purely by the top-left rule,
    // which the masked cmpEq path must reproduce per lane.
    expectAllWidthsMatch(tri(0.5f, 0.5f, 16.5f, 0.5f, 0.5f, 16.5f), vp,
                         fullRect(vp));
    expectAllWidthsMatch(tri(16.5f, 0.5f, 16.5f, 16.5f, 0.5f, 16.5f), vp,
                         fullRect(vp));
    // Axis-aligned box edges crossing quad boundaries at x = 4 and x = 8.
    expectAllWidthsMatch(tri(4.5f, 2.5f, 8.5f, 2.5f, 4.5f, 9.5f), vp,
                         fullRect(vp));
}

TEST(RasterSimd, SharedEdgeAtQuadBoundaryCoversExactlyOnce)
{
    Viewport vp{64, 64};
    // A quad split along a diagonal whose vertices sit on lane-width
    // multiples: fragments from the two triangles must partition the
    // pixels at every lane width (fill convention is width-invariant).
    ScreenTriangle upper = tri(8.0f, 8.0f, 24.0f, 8.0f, 8.0f, 24.0f);
    ScreenTriangle lower = tri(24.0f, 8.0f, 24.0f, 24.0f, 8.0f, 24.0f);
    for (int w : {1, 2, 4, 8}) {
        std::vector<Fragment> a, b;
        switch (w) {
          case 1:
            a = rasterAs<simd::ScalarLanes<1>>(upper, vp, fullRect(vp));
            b = rasterAs<simd::ScalarLanes<1>>(lower, vp, fullRect(vp));
            break;
          case 2:
            a = rasterAs<simd::ScalarLanes<2>>(upper, vp, fullRect(vp));
            b = rasterAs<simd::ScalarLanes<2>>(lower, vp, fullRect(vp));
            break;
          case 4:
            a = rasterAs<simd::ScalarLanes<4>>(upper, vp, fullRect(vp));
            b = rasterAs<simd::ScalarLanes<4>>(lower, vp, fullRect(vp));
            break;
          default:
            a = rasterAs<simd::ScalarLanes<8>>(upper, vp, fullRect(vp));
            b = rasterAs<simd::ScalarLanes<8>>(lower, vp, fullRect(vp));
            break;
        }
        std::vector<std::pair<int, int>> pixels;
        for (const Fragment &f : a)
            pixels.emplace_back(f.x, f.y);
        for (const Fragment &f : b)
            pixels.emplace_back(f.x, f.y);
        std::sort(pixels.begin(), pixels.end());
        ASSERT_EQ(std::adjacent_find(pixels.begin(), pixels.end()),
                  pixels.end())
            << "double-covered pixel at lane width " << w;
        EXPECT_EQ(pixels.size(), 16u * 16u) << "lane width " << w;
    }
}

TEST(RasterSimd, ClipRectsNotMultiplesOfLaneWidth)
{
    Viewport vp{64, 64};
    ScreenTriangle t = tri(1.2f, 1.7f, 60.4f, 7.3f, 9.8f, 58.6f);
    // Clip widths 1..13 force every tail-mask shape, including quads that
    // start mid-triangle and rects narrower than one quad.
    for (int w = 1; w <= 13; ++w) {
        PixelRect clip{11, 3, 11 + w - 1, 50};
        expectAllWidthsMatch(t, vp, clip);
    }
}

TEST(RasterSimd, OnePixelClipsTileTheTriangle)
{
    Viewport vp{16, 16};
    ScreenTriangle t = tri(0.8f, 0.4f, 14.6f, 2.1f, 3.2f, 14.9f);
    std::vector<Fragment> ref =
        rasterAs<simd::NativeLanes>(t, vp, fullRect(vp));

    // Rasterizing through every 1x1 clip rect must reproduce the full-rect
    // pass exactly (absolute-coordinate evaluation: no dependence on where
    // a quad starts).
    std::vector<Fragment> tiled;
    for (int y = 0; y < vp.height; ++y)
        for (int x = 0; x < vp.width; ++x) {
            PixelRect clip{x, y, x, y};
            std::vector<Fragment> one =
                rasterAs<simd::NativeLanes>(t, vp, clip);
            tiled.insert(tiled.end(), one.begin(), one.end());
        }
    expectBitIdentical(ref, tiled, "1x1 tiling");
}

TEST(RasterSimd, SpanSinkExpandsToFragmentSink)
{
    Viewport vp{48, 48};
    Rng rng(7u);
    for (int iter = 0; iter < 20; ++iter) {
        ScreenTriangle t = tri(rng.nextFloat(0.0f, 48.0f),
                               rng.nextFloat(0.0f, 48.0f),
                               rng.nextFloat(0.0f, 48.0f),
                               rng.nextFloat(0.0f, 48.0f),
                               rng.nextFloat(0.0f, 48.0f),
                               rng.nextFloat(0.0f, 48.0f));
        std::vector<Fragment> per_frag =
            rasterAs<simd::NativeLanes>(t, vp, fullRect(vp));
        std::vector<Fragment> from_spans;
        rasterizeTriangleInRectAs<simd::NativeLanes>(
            t, vp, fullRect(vp), [&](const FragmentSpan &span) {
                std::uint32_t rest = span.mask;
                while (rest != 0) {
                    int lane = std::countr_zero(rest);
                    rest &= rest - 1;
                    from_spans.push_back(span.fragmentAt(lane));
                }
            });
        expectBitIdentical(per_frag, from_spans, "span expansion");
    }
}

TEST(RasterSimd, CoverageSinkMatchesFragmentCount)
{
    Viewport vp{40, 40};
    Rng rng(11u);
    for (int iter = 0; iter < 20; ++iter) {
        ScreenTriangle t = tri(rng.nextFloat(-4.0f, 44.0f),
                               rng.nextFloat(-4.0f, 44.0f),
                               rng.nextFloat(-4.0f, 44.0f),
                               rng.nextFloat(-4.0f, 44.0f),
                               rng.nextFloat(-4.0f, 44.0f),
                               rng.nextFloat(-4.0f, 44.0f));
        std::size_t frags =
            rasterAs<simd::NativeLanes>(t, vp, fullRect(vp)).size();
        EXPECT_EQ(countCoverage(t, vp), frags);

        std::uint64_t masked = 0;
        rasterizeTriangleInRectAs<simd::ScalarLanes<4>>(
            t, vp, fullRect(vp), [&](const CoverageSpan &span) {
                masked += static_cast<std::uint64_t>(
                    std::popcount(span.mask));
            });
        EXPECT_EQ(masked, frags);
    }
}

TEST(RasterSimd, TypeErasedSinkMatchesTemplatedSink)
{
    Viewport vp{32, 32};
    ScreenTriangle t = tri(2.3f, 1.9f, 29.7f, 6.4f, 8.8f, 30.2f);
    std::vector<Fragment> direct =
        rasterAs<simd::NativeLanes>(t, vp, fullRect(vp));
    std::vector<Fragment> erased;
    rasterizeTriangle(t, vp,
                      [&erased](const Fragment &f) { erased.push_back(f); });
    expectBitIdentical(direct, erased, "FragmentSink");
}

} // namespace
} // namespace chopin

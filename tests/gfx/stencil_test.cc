#include <gtest/gtest.h>

#include "gfx/surface.hh"
#include "sfr/grouping.hh"
#include "trace/generator.hh"

namespace chopin
{
namespace
{

Fragment
frag(int x, int y, float z = 0.5f)
{
    return {x, y, z, {1, 1, 1, 1}};
}

RasterState
maskState(StencilOp op = StencilOp::Replace, std::uint8_t ref = 1)
{
    RasterState s;
    s.depth_test = false;
    s.stencil_test = true;
    s.stencil_func = DepthFunc::Always;
    s.stencil_ref = ref;
    s.stencil_pass_op = op;
    return s;
}

TEST(Stencil, ReplaceWritesReference)
{
    Surface s(4, 4);
    DrawStats st;
    s.applyFragment(frag(1, 1), maskState(StencilOp::Replace, 7), 0, 0.5f,
                    st);
    EXPECT_EQ(s.stencilAt(1, 1), 7);
    EXPECT_EQ(s.stencilAt(0, 0), 0); // untouched pixels keep the clear value
}

TEST(Stencil, IncrementSaturates)
{
    Surface s(2, 2);
    DrawStats st;
    RasterState inc = maskState(StencilOp::Increment);
    for (int i = 0; i < 300; ++i)
        s.applyFragment(frag(0, 0), inc, 0, 0.5f, st);
    EXPECT_EQ(s.stencilAt(0, 0), 255);
}

TEST(Stencil, DecrementSaturatesAtZero)
{
    Surface s(2, 2);
    DrawStats st;
    s.applyFragment(frag(0, 0), maskState(StencilOp::Decrement), 0, 0.5f,
                    st);
    EXPECT_EQ(s.stencilAt(0, 0), 0);
}

TEST(Stencil, EqualFuncMasksDrawing)
{
    Surface s(4, 1);
    DrawStats st;
    // Mask only pixel (1,0) with value 1.
    s.applyFragment(frag(1, 0), maskState(), 0, 0.5f, st);

    // Decal: draws only where stencil == 1.
    RasterState decal;
    decal.depth_test = false;
    decal.stencil_test = true;
    decal.stencil_func = DepthFunc::Equal;
    decal.stencil_ref = 1;
    decal.stencil_pass_op = StencilOp::Keep;
    DrawStats decal_stats;
    for (int x = 0; x < 4; ++x)
        s.applyFragment(frag(x, 0), decal, 1, 0.5f, decal_stats);
    EXPECT_EQ(decal_stats.frags_early_pass, 1u);
    EXPECT_EQ(decal_stats.frags_early_fail, 3u);
    EXPECT_EQ(s.writerAt(1, 0), 1u);
    EXPECT_NE(s.writerAt(0, 0), 1u);
}

TEST(Stencil, FailingFragmentLeavesStencilUnchanged)
{
    Surface s(2, 2);
    DrawStats st;
    RasterState never = maskState(StencilOp::Replace, 9);
    never.stencil_func = DepthFunc::Never;
    s.applyFragment(frag(0, 0), never, 0, 0.5f, st);
    EXPECT_EQ(s.stencilAt(0, 0), 0);
    EXPECT_EQ(st.frags_early_fail, 1u);
}

TEST(Stencil, DepthFailSkipsStencilUpdate)
{
    Surface s(2, 2);
    DrawStats st;
    RasterState opaque;
    s.applyFragment(frag(0, 0, 0.2f), opaque, 0, 0.5f, st); // occluder
    RasterState both = maskState(StencilOp::Replace, 5);
    both.depth_test = true; // behind the occluder
    DrawStats st2;
    s.applyFragment(frag(0, 0, 0.9f), both, 1, 0.5f, st2);
    EXPECT_EQ(st2.frags_early_fail, 1u);
    EXPECT_EQ(s.stencilAt(0, 0), 0); // keep-on-fail
}

TEST(Stencil, ClearResetsStencil)
{
    Surface s(2, 2);
    DrawStats st;
    s.applyFragment(frag(0, 0), maskState(StencilOp::Replace, 3), 0, 0.5f,
                    st);
    s.clear({0, 0, 0, 0}, 1.0f);
    EXPECT_EQ(s.stencilAt(0, 0), 0);
}

TEST(Stencil, CompareTruthTable)
{
    EXPECT_TRUE(stencilCompare(DepthFunc::Equal, 3, 3));
    EXPECT_FALSE(stencilCompare(DepthFunc::Equal, 3, 4));
    EXPECT_TRUE(stencilCompare(DepthFunc::Less, 2, 3));
    EXPECT_TRUE(stencilCompare(DepthFunc::GreaterEqual, 3, 3));
    EXPECT_FALSE(stencilCompare(DepthFunc::Never, 0, 0));
    EXPECT_TRUE(stencilCompare(DepthFunc::Always, 0, 200));
}

// ---- Integration with grouping and the generator ---------------------------

TEST(Stencil, StateChangeOpensGroupBoundary)
{
    FrameTrace t;
    t.viewport = {64, 64};
    for (int i = 0; i < 3; ++i) {
        DrawCommand d;
        d.id = static_cast<DrawId>(i);
        d.triangles.resize(10);
        if (i == 1) {
            d.state.stencil_test = true;
            d.state.stencil_func = DepthFunc::Equal;
            d.state.stencil_ref = 1;
        }
        t.draws.push_back(std::move(d));
    }
    auto groups = formGroups(t);
    ASSERT_EQ(groups.size(), 3u);
    EXPECT_EQ(groups[1].opened_by, BoundaryEvent::DepthFunc);
    EXPECT_TRUE(groups[1].stencil_test);
}

TEST(Stencil, StencilGroupsFallBackToDuplication)
{
    CompositionGroup g;
    g.triangles = 1 << 20;
    g.stencil_test = true;
    EXPECT_FALSE(groupDistributable(g, 4096));
    g.stencil_test = false;
    EXPECT_TRUE(groupDistributable(g, 4096));
}

TEST(Stencil, GeneratorEmitsStencilDraws)
{
    FrameTrace t = generateBenchmark("mirror", 8);
    int masks = 0, decals = 0;
    for (const DrawCommand &d : t.draws) {
        if (!d.state.stencil_test)
            continue;
        if (d.state.stencil_pass_op == StencilOp::Replace)
            ++masks;
        else if (d.state.stencil_func == DepthFunc::Equal)
            ++decals;
    }
    EXPECT_GE(masks, 1);
    EXPECT_GE(decals, 1);
}

} // namespace
} // namespace chopin

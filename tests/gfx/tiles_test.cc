#include <gtest/gtest.h>

#include <set>

#include "gfx/tiles.hh"

namespace chopin
{
namespace
{

TEST(Tiles, GridDimensionsRoundUp)
{
    TileGrid grid(1280, 1024, 8);
    EXPECT_EQ(grid.tilesX(), 20);
    EXPECT_EQ(grid.tilesY(), 16);
    EXPECT_EQ(grid.tileCount(), 320);

    TileGrid odd(130, 65, 4);
    EXPECT_EQ(odd.tilesX(), 3);
    EXPECT_EQ(odd.tilesY(), 2);
}

TEST(Tiles, EveryPixelHasExactlyOneOwner)
{
    TileGrid grid(130, 70, 3, 32);
    for (int y = 0; y < 70; ++y) {
        for (int x = 0; x < 130; ++x) {
            GpuId owner = grid.ownerOfPixel(x, y);
            ASSERT_LT(owner, 3u);
        }
    }
}

TEST(Tiles, OwnershipInterleavesEvenly)
{
    TileGrid grid(1280, 1024, 8);
    std::vector<int> tiles_per_gpu(8, 0);
    for (int ty = 0; ty < grid.tilesY(); ++ty)
        for (int tx = 0; tx < grid.tilesX(); ++tx)
            tiles_per_gpu[grid.ownerOfTile(tx, ty)] += 1;
    for (int g = 0; g < 8; ++g)
        EXPECT_EQ(tiles_per_gpu[g], 40); // 320 tiles / 8 GPUs
}

TEST(Tiles, SingleGpuOwnsEverything)
{
    TileGrid grid(640, 480, 1);
    EXPECT_EQ(grid.ownerOfPixel(0, 0), 0u);
    EXPECT_EQ(grid.ownerOfPixel(639, 479), 0u);
}

TEST(Tiles, PixelsInEdgeTilesArePartial)
{
    TileGrid grid(130, 70, 2, 64);
    // Tile (0,0): full 64x64.
    EXPECT_EQ(grid.pixelsInTile(0), 64 * 64);
    // Tile (2,0): 130 - 128 = 2 columns wide.
    EXPECT_EQ(grid.pixelsInTile(2), 2 * 64);
    // Tile (2,1): 2 wide x 6 tall.
    EXPECT_EQ(grid.pixelsInTile(grid.tilesX() + 2), 2 * 6);
    // All tiles sum to the screen area.
    int total = 0;
    for (int t = 0; t < grid.tileCount(); ++t)
        total += grid.pixelsInTile(t);
    EXPECT_EQ(total, 130 * 70);
}

ScreenTriangle
triAt(float x0, float y0, float x1, float y1, float x2, float y2)
{
    ScreenTriangle t;
    t.v[0] = {{x0, y0}, 0.5f, {}};
    t.v[1] = {{x1, y1}, 0.5f, {}};
    t.v[2] = {{x2, y2}, 0.5f, {}};
    return t;
}

TEST(Tiles, OverlappedGpusMatchesBruteForce)
{
    TileGrid grid(512, 512, 4);
    ScreenTriangle t = triAt(10, 10, 200, 40, 90, 300);
    std::uint64_t mask = grid.overlappedGpus(t);

    // Brute force over the bounding box tiles.
    std::uint64_t expected = 0;
    int x0, y0, x1, y1;
    t.boundingBox(512, 512, x0, y0, x1, y1);
    for (int ty = y0 / 64; ty <= y1 / 64; ++ty)
        for (int tx = x0 / 64; tx <= x1 / 64; ++tx)
            expected |= 1ULL << grid.ownerOfTile(tx, ty);
    EXPECT_EQ(mask, expected);
}

TEST(Tiles, TinyTriangleTouchesOneGpu)
{
    TileGrid grid(512, 512, 8);
    std::uint64_t mask = grid.overlappedGpus(triAt(10, 10, 12, 10, 10, 12));
    EXPECT_EQ(__builtin_popcountll(mask), 1);
}

TEST(Tiles, FullScreenTriangleTouchesAllGpus)
{
    TileGrid grid(512, 512, 8);
    std::uint64_t mask =
        grid.overlappedGpus(triAt(-600, -600, 1200, -600, -600, 1200));
    EXPECT_EQ(mask, 0xffULL);
}

TEST(Tiles, OffscreenTriangleTouchesNothing)
{
    TileGrid grid(512, 512, 8);
    EXPECT_EQ(grid.overlappedGpus(triAt(600, 600, 700, 600, 600, 700)), 0u);
}

TEST(Tiles, OverlappedTilesList)
{
    TileGrid grid(256, 256, 2, 64);
    std::vector<int> tiles;
    grid.overlappedTiles(triAt(0, 0, 100, 0, 0, 100), tiles);
    // bbox covers tiles (0..1, 0..1).
    EXPECT_EQ(tiles.size(), 4u);
}

TEST(Tiles, BlockedAssignmentIsContiguous)
{
    TileGrid grid(1280, 1024, 8, 64, TileAssignment::Blocked);
    GpuId prev = 0;
    std::vector<int> tiles_per_gpu(8, 0);
    for (int t = 0; t < grid.tileCount(); ++t) {
        GpuId owner = grid.ownerOfTile(t % grid.tilesX(), t / grid.tilesX());
        ASSERT_GE(owner, prev) << "blocked ownership must be monotonic";
        prev = owner;
        tiles_per_gpu[owner] += 1;
    }
    // 320 tiles over 8 GPUs: equal 40-tile bands.
    for (int g = 0; g < 8; ++g)
        EXPECT_EQ(tiles_per_gpu[g], 40);
}

TEST(Tiles, BlockedAssignmentCoversAllGpus)
{
    TileGrid grid(640, 480, 5, 64, TileAssignment::Blocked);
    std::vector<bool> seen(5, false);
    for (int t = 0; t < grid.tileCount(); ++t)
        seen[grid.ownerOfTile(t % grid.tilesX(), t / grid.tilesX())] = true;
    for (int g = 0; g < 5; ++g)
        EXPECT_TRUE(seen[g]) << "GPU " << g << " owns no tiles";
}

TEST(Tiles, OwnersPartitionScreenUnderEveryAssignment)
{
    // The composition-ownership invariant: every pixel has exactly one
    // owner below the GPU count, for awkward sizes and both assignments.
    for (TileAssignment a :
         {TileAssignment::Interleaved, TileAssignment::Blocked}) {
        EXPECT_TRUE(TileGrid(130, 70, 3, 32, a).ownersPartitionScreen());
        EXPECT_TRUE(TileGrid(1280, 1024, 8, 64, a).ownersPartitionScreen());
        EXPECT_TRUE(TileGrid(1, 1, 1, 64, a).ownersPartitionScreen());
        EXPECT_TRUE(TileGrid(63, 129, 5, 64, a).ownersPartitionScreen());
    }
}

TEST(Tiles, SmallTriangleTouchesFewerGpusUnderBlocked)
{
    // The tradeoff behind the paper's interleaving: blocked assignment
    // keeps a local triangle on one GPU (fewer GPUpd duplicates) while
    // interleaving spreads the same area over many GPUs.
    TileGrid inter(1280, 1024, 8, 64, TileAssignment::Interleaved);
    TileGrid block(1280, 1024, 8, 64, TileAssignment::Blocked);
    ScreenTriangle t = triAt(100, 100, 350, 120, 150, 360);
    EXPECT_LT(__builtin_popcountll(block.overlappedGpus(t)),
              __builtin_popcountll(inter.overlappedGpus(t)));
}

} // namespace
} // namespace chopin

#include <gtest/gtest.h>

#include "gfx/renderer.hh"

namespace chopin
{
namespace
{

/** A draw of two front-facing triangles filling most of the screen. */
DrawInput
bigQuadInput(std::vector<Triangle> &storage, RasterState state = {})
{
    storage.clear();
    Triangle t1, t2;
    Color c{0.5f, 0.5f, 0.5f, 1.0f};
    // NDC clockwise => screen counter-clockwise (front-facing).
    t1.v[0] = {{-0.9f, -0.9f, 0.0f}, c};
    t1.v[1] = {{-0.9f, 0.9f, 0.0f}, c};
    t1.v[2] = {{0.9f, -0.9f, 0.0f}, c};
    t2.v[0] = {{0.9f, -0.9f, 0.0f}, c};
    t2.v[1] = {{-0.9f, 0.9f, 0.0f}, c};
    t2.v[2] = {{0.9f, 0.9f, 0.0f}, c};
    storage.push_back(t1);
    storage.push_back(t2);

    DrawInput in;
    in.triangles = storage;
    in.mvp = Mat4::identity();
    in.state = state;
    in.draw_id = 1;
    return in;
}

TEST(Renderer, UnfilteredRenderCoversTheQuad)
{
    Viewport vp{128, 128};
    Surface surface(vp.width, vp.height);
    std::vector<Triangle> tris;
    DrawStats stats = renderDraw(surface, vp, bigQuadInput(tris));
    EXPECT_EQ(stats.tris_in, 2u);
    EXPECT_EQ(stats.tris_rasterized, 2u);
    EXPECT_EQ(stats.tris_coarse_rejected, 0u);
    // 0.9 NDC quad on 128px: ~115x115 pixels.
    EXPECT_NEAR(static_cast<double>(stats.frags_written), 115.0 * 115.0,
                300.0);
}

TEST(Renderer, TileFilterPartitionsFragments)
{
    Viewport vp{128, 128};
    TileGrid grid(vp.width, vp.height, 2, 32);
    std::vector<Triangle> tris;

    std::uint64_t total = 0;
    for (GpuId g = 0; g < 2; ++g) {
        Surface surface(vp.width, vp.height);
        DrawStats s = renderDraw(surface, vp, bigQuadInput(tris),
                                 RenderFilter{&grid, g});
        total += s.frags_written;
    }
    Surface all(vp.width, vp.height);
    DrawStats full = renderDraw(all, vp, bigQuadInput(tris));
    EXPECT_EQ(total, full.frags_written);
}

TEST(Renderer, CoarseRejectSkipsForeignTriangles)
{
    Viewport vp{256, 256};
    TileGrid grid(vp.width, vp.height, 4, 64);
    // A small triangle confined to the top-left tile (owner 0).
    std::vector<Triangle> tris(1);
    Color c{1, 0, 0, 1};
    tris[0].v[0] = {{-0.95f, 0.95f, 0.0f}, c};
    tris[0].v[1] = {{-0.95f, 0.80f, 0.0f}, c};
    tris[0].v[2] = {{-0.80f, 0.95f, 0.0f}, c};
    DrawInput in;
    in.triangles = tris;
    in.mvp = Mat4::identity();
    in.draw_id = 0;
    in.backface_cull = false;

    Surface surface(vp.width, vp.height);
    DrawStats owner = renderDraw(surface, vp, in, RenderFilter{&grid, 0});
    DrawStats foreign = renderDraw(surface, vp, in, RenderFilter{&grid, 3});
    EXPECT_EQ(owner.tris_rasterized, 1u);
    EXPECT_GT(owner.frags_written, 0u);
    EXPECT_EQ(foreign.tris_rasterized, 0u);
    EXPECT_EQ(foreign.tris_coarse_rejected, 1u);
    EXPECT_EQ(foreign.frags_generated, 0u);
}

TEST(Renderer, TouchedTilesTrackWrites)
{
    Viewport vp{256, 256};
    TileGrid grid(vp.width, vp.height, 1, 64);
    std::vector<std::uint8_t> touched(
        static_cast<std::size_t>(grid.tileCount()), 0);
    std::vector<Triangle> tris(1);
    Color c{1, 1, 1, 1};
    // Small triangle in the top-left tile only.
    tris[0].v[0] = {{-0.95f, 0.95f, 0.0f}, c};
    tris[0].v[1] = {{-0.95f, 0.85f, 0.0f}, c};
    tris[0].v[2] = {{-0.85f, 0.95f, 0.0f}, c};
    DrawInput in;
    in.triangles = tris;
    in.mvp = Mat4::identity();
    in.backface_cull = false;

    Surface surface(vp.width, vp.height);
    renderDraw(surface, vp, in, RenderFilter{}, &touched, &grid);
    int marked = 0;
    for (std::uint8_t t : touched)
        marked += t;
    EXPECT_EQ(marked, 1);
    EXPECT_EQ(touched[0], 1); // tile (0,0)
}

TEST(Renderer, OccludedDrawTouchesNoTiles)
{
    Viewport vp{128, 128};
    TileGrid grid(vp.width, vp.height, 1, 64);
    Surface surface(vp.width, vp.height);
    std::vector<Triangle> tris;

    // First draw fills the screen at depth 0.5 (NDC z=0).
    renderDraw(surface, vp, bigQuadInput(tris));

    // Second draw is strictly behind: every fragment early-fails.
    std::vector<Triangle> behind_tris;
    DrawInput behind = bigQuadInput(behind_tris);
    for (Triangle &t : behind_tris)
        for (int v = 0; v < 3; ++v)
            t.v[v].pos.z = 0.5f;
    behind.draw_id = 2;
    std::vector<std::uint8_t> touched(
        static_cast<std::size_t>(grid.tileCount()), 0);
    DrawStats s = renderDraw(surface, vp, behind, RenderFilter{}, &touched,
                             &grid);
    EXPECT_EQ(s.frags_written, 0u);
    EXPECT_GT(s.frags_early_fail, 0u);
    for (std::uint8_t t : touched)
        EXPECT_EQ(t, 0);
}

TEST(RendererDeath, TouchedTilesWithoutGridPanics)
{
    Viewport vp{64, 64};
    Surface surface(vp.width, vp.height);
    std::vector<Triangle> tris;
    std::vector<std::uint8_t> touched(4, 0);
    EXPECT_DEATH(renderDraw(surface, vp, bigQuadInput(tris), RenderFilter{},
                            &touched, nullptr),
                 "needs a tile grid");
}

} // namespace
} // namespace chopin

/**
 * @file
 * Host parallelism vs. simulated parallelism: `--jobs=N` must be
 * bit-identical to `--jobs=1` for every scheme — same frame hash, same
 * full surface content hash, same simulated cycle count, same functional
 * totals. This is the enforcement of DESIGN.md's "Host parallelism vs.
 * simulated parallelism" contract across multiple trace seeds.
 *
 * The trace is ut3 (effect-heavy, ~10% transparent draws) so the run
 * exercises every parallel region: binned rasterization, the partitioned
 * renderer, CHOPIN's opaque merges, and the transparent per-GPU fan-out.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sfr/schemes.hh"
#include "stats/metrics.hh"
#include "stats/tracer.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"
#include "util/thread_pool.hh"

namespace chopin
{
namespace
{

/** Restore a deterministic single-job pool when a test exits. */
struct ScopedJobs
{
    explicit ScopedJobs(unsigned jobs) { setGlobalJobs(jobs); }
    ~ScopedJobs() { setGlobalJobs(1); }
};

void
expectIdentical(const FrameResult &a, const FrameResult &b,
                const std::string &what)
{
    // Every registered metric, not a hand-picked subset: the metric
    // registry (stats/metrics.hh) is the comparison schema, so a counter
    // added to FrameAccounting is automatically under this gate.
    const FrameAccounting &fa = a;
    const FrameAccounting &fb = b;
    EXPECT_TRUE(metricsEqual(fa, fb))
        << what << ": differing metrics: "
        << ::testing::PrintToString(metricsDiff(fa, fb));
}

class ParallelDeterminismTest : public ::testing::TestWithParam<Scheme>
{
};

TEST_P(ParallelDeterminismTest, JobsDoNotChangeResults)
{
    Scheme scheme = GetParam();
    ScopedJobs restore(1);

    SystemConfig cfg;
    cfg.num_gpus = 8;

    // Three distinct seeds of the same profile: different geometry,
    // different group structure, same invariant.
    BenchmarkProfile profile = scaleProfile(benchmarkProfile("ut3"), 32);
    for (int variant = 0; variant < 3; ++variant) {
        BenchmarkProfile p = profile;
        p.seed += static_cast<std::uint64_t>(variant) * 0x9e3779b97f4a7c15ull;
        FrameTrace trace = generateTrace(p);

        setGlobalJobs(1);
        FrameResult serial = runScheme(scheme, cfg, trace);

        for (unsigned jobs : {2u, 8u}) {
            setGlobalJobs(jobs);
            FrameResult parallel = runScheme(scheme, cfg, trace);
            expectIdentical(serial, parallel,
                            toString(scheme) + " seed-variant " +
                                std::to_string(variant) + " jobs=" +
                                std::to_string(jobs));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, ParallelDeterminismTest,
    ::testing::Values(Scheme::SingleGpu, Scheme::Duplication, Scheme::Gpupd,
                      Scheme::Chopin, Scheme::ChopinCompSched),
    [](const auto &info) {
        std::string name = toString(info.param);
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

class EpochTimingDeterminismTest : public ::testing::TestWithParam<Scheme>
{
};

TEST_P(EpochTimingDeterminismTest, JobsDoNotChangeEpochResults)
{
    // The epoch-parallel timing engine (SystemConfig::epoch_timing) is the
    // one code path where the *timing model itself* runs on pool workers:
    // composition partitions advance concurrently and exchange effects
    // through barrier-committed mailboxes. Its determinism contract is the
    // same as everything else's — any --jobs value, bit-identical results.
    Scheme scheme = GetParam();
    ScopedJobs restore(1);

    SystemConfig cfg;
    cfg.num_gpus = 8;
    cfg.epoch_timing = true;

    BenchmarkProfile profile = scaleProfile(benchmarkProfile("ut3"), 32);
    for (int variant = 0; variant < 3; ++variant) {
        BenchmarkProfile p = profile;
        p.seed += static_cast<std::uint64_t>(variant) * 0x9e3779b97f4a7c15ull;
        FrameTrace trace = generateTrace(p);

        setGlobalJobs(1);
        FrameResult serial = runScheme(scheme, cfg, trace);

        for (unsigned jobs : {2u, 8u}) {
            setGlobalJobs(jobs);
            FrameResult parallel = runScheme(scheme, cfg, trace);
            expectIdentical(serial, parallel,
                            toString(scheme) + " epoch seed-variant " +
                                std::to_string(variant) + " jobs=" +
                                std::to_string(jobs));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    EpochSchemes, EpochTimingDeterminismTest,
    ::testing::Values(Scheme::Chopin, Scheme::ChopinCompSched),
    [](const auto &info) {
        std::string name = toString(info.param);
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(ParallelDeterminism, EpochTraceBytesIdenticalAcrossJobs)
{
    // With a tracer attached the epoch composers stage spans in
    // per-partition SpanBuffers and flush them at the barriers in
    // canonical (start, partition, seq) order — so even the exported
    // timeline bytes must not depend on the host job count.
    ScopedJobs restore(1);
    SystemConfig cfg;
    cfg.num_gpus = 4;
    cfg.epoch_timing = true;
    FrameTrace trace = generateBenchmark("ut3", 64);

    for (Scheme scheme : {Scheme::Chopin, Scheme::ChopinCompSched}) {
        std::string baseline;
        for (unsigned jobs : {1u, 2u, 8u}) {
            setGlobalJobs(jobs);
            Tracer tracer;
            runScheme(scheme, cfg, trace, &tracer);
            EXPECT_GT(tracer.spanCount(), 0u) << toString(scheme);

            std::ostringstream os;
            tracer.exportChromeJson(os);
            if (jobs == 1u) {
                baseline = os.str();
                continue;
            }
            EXPECT_TRUE(os.str() == baseline)
                << toString(scheme) << " epoch jobs=" << jobs
                << ": trace bytes differ (" << os.str().size() << " vs "
                << baseline.size() << " bytes)";
        }
    }
}

TEST(ParallelDeterminism, TraceBytesIdenticalAcrossJobs)
{
    // The exported timeline is part of the determinism contract: the span
    // sequence is emitted by coordinator-only code, so the Chrome JSON
    // must be byte-identical at any host --jobs value. Gpupd covers the
    // projection/distribution spans, ChopinCompSched covers per-draw
    // pipeline spans, interconnect transfers, sync and composition.
    ScopedJobs restore(1);
    SystemConfig cfg;
    cfg.num_gpus = 4;
    FrameTrace trace = generateBenchmark("ut3", 64);

    for (Scheme scheme : {Scheme::Gpupd, Scheme::ChopinCompSched}) {
        std::string baseline;
        for (unsigned jobs : {1u, 2u, 8u}) {
            setGlobalJobs(jobs);
            Tracer tracer;
            runScheme(scheme, cfg, trace, &tracer);
            EXPECT_GT(tracer.spanCount(), 0u) << toString(scheme);

            std::ostringstream os;
            tracer.exportChromeJson(os);
            if (jobs == 1u) {
                baseline = os.str();
                continue;
            }
            EXPECT_TRUE(os.str() == baseline)
                << toString(scheme) << " jobs=" << jobs << ": trace bytes "
                << "differ (" << os.str().size() << " vs "
                << baseline.size() << " bytes)";
        }
    }
}

TEST(ParallelDeterminism, RendererScratchIsReusedAcrossDraws)
{
    // The per-thread scratch must not leak state between draws: rendering
    // the same trace twice in a row on one thread (second run reuses all
    // scratch capacity) must produce identical results.
    ScopedJobs restore(2);
    SystemConfig cfg;
    cfg.num_gpus = 4;
    FrameTrace trace = generateBenchmark("nfs", 32);
    FrameResult a = runScheme(Scheme::Chopin, cfg, trace);
    FrameResult b = runScheme(Scheme::Chopin, cfg, trace);
    expectIdentical(a, b, "scratch reuse");
}

} // namespace
} // namespace chopin

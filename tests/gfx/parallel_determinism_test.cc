/**
 * @file
 * Host parallelism vs. simulated parallelism: `--jobs=N` must be
 * bit-identical to `--jobs=1` for every scheme — same frame hash, same
 * full surface content hash, same simulated cycle count, same functional
 * totals. This is the enforcement of DESIGN.md's "Host parallelism vs.
 * simulated parallelism" contract across multiple trace seeds.
 *
 * The trace is ut3 (effect-heavy, ~10% transparent draws) so the run
 * exercises every parallel region: binned rasterization, the partitioned
 * renderer, CHOPIN's opaque merges, and the transparent per-GPU fan-out.
 */

#include <gtest/gtest.h>

#include "sfr/schemes.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"
#include "util/thread_pool.hh"

namespace chopin
{
namespace
{

/** Restore a deterministic single-job pool when a test exits. */
struct ScopedJobs
{
    explicit ScopedJobs(unsigned jobs) { setGlobalJobs(jobs); }
    ~ScopedJobs() { setGlobalJobs(1); }
};

void
expectIdentical(const FrameResult &a, const FrameResult &b,
                const std::string &what)
{
    EXPECT_EQ(a.frame_hash, b.frame_hash) << what;
    EXPECT_EQ(a.content_hash, b.content_hash) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;

    EXPECT_EQ(a.totals.verts_shaded, b.totals.verts_shaded) << what;
    EXPECT_EQ(a.totals.tris_in, b.totals.tris_in) << what;
    EXPECT_EQ(a.totals.tris_clipped, b.totals.tris_clipped) << what;
    EXPECT_EQ(a.totals.tris_culled, b.totals.tris_culled) << what;
    EXPECT_EQ(a.totals.tris_rasterized, b.totals.tris_rasterized) << what;
    EXPECT_EQ(a.totals.tris_coarse_rejected, b.totals.tris_coarse_rejected)
        << what;
    EXPECT_EQ(a.totals.frags_generated, b.totals.frags_generated) << what;
    EXPECT_EQ(a.totals.frags_early_pass, b.totals.frags_early_pass) << what;
    EXPECT_EQ(a.totals.frags_early_fail, b.totals.frags_early_fail) << what;
    EXPECT_EQ(a.totals.frags_late_pass, b.totals.frags_late_pass) << what;
    EXPECT_EQ(a.totals.frags_late_fail, b.totals.frags_late_fail) << what;
    EXPECT_EQ(a.totals.frags_shaded, b.totals.frags_shaded) << what;
    EXPECT_EQ(a.totals.frags_textured, b.totals.frags_textured) << what;
    EXPECT_EQ(a.totals.frags_written, b.totals.frags_written) << what;

    EXPECT_EQ(a.geom_busy, b.geom_busy) << what;
    EXPECT_EQ(a.raster_busy, b.raster_busy) << what;
    EXPECT_EQ(a.frag_busy, b.frag_busy) << what;

    EXPECT_EQ(a.traffic.total, b.traffic.total) << what;
    EXPECT_EQ(a.traffic.messages, b.traffic.messages) << what;
    EXPECT_EQ(a.breakdown.composition, b.breakdown.composition) << what;
}

class ParallelDeterminismTest : public ::testing::TestWithParam<Scheme>
{
};

TEST_P(ParallelDeterminismTest, JobsDoNotChangeResults)
{
    Scheme scheme = GetParam();
    ScopedJobs restore(1);

    SystemConfig cfg;
    cfg.num_gpus = 8;

    // Three distinct seeds of the same profile: different geometry,
    // different group structure, same invariant.
    BenchmarkProfile profile = scaleProfile(benchmarkProfile("ut3"), 32);
    for (int variant = 0; variant < 3; ++variant) {
        BenchmarkProfile p = profile;
        p.seed += static_cast<std::uint64_t>(variant) * 0x9e3779b97f4a7c15ull;
        FrameTrace trace = generateTrace(p);

        setGlobalJobs(1);
        FrameResult serial = runScheme(scheme, cfg, trace);

        for (unsigned jobs : {2u, 8u}) {
            setGlobalJobs(jobs);
            FrameResult parallel = runScheme(scheme, cfg, trace);
            expectIdentical(serial, parallel,
                            toString(scheme) + " seed-variant " +
                                std::to_string(variant) + " jobs=" +
                                std::to_string(jobs));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, ParallelDeterminismTest,
    ::testing::Values(Scheme::SingleGpu, Scheme::Duplication, Scheme::Gpupd,
                      Scheme::Chopin, Scheme::ChopinCompSched),
    [](const auto &info) {
        std::string name = toString(info.param);
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(ParallelDeterminism, RendererScratchIsReusedAcrossDraws)
{
    // The per-thread scratch must not leak state between draws: rendering
    // the same trace twice in a row on one thread (second run reuses all
    // scratch capacity) must produce identical results.
    ScopedJobs restore(2);
    SystemConfig cfg;
    cfg.num_gpus = 4;
    FrameTrace trace = generateBenchmark("nfs", 32);
    FrameResult a = runScheme(Scheme::Chopin, cfg, trace);
    FrameResult b = runScheme(Scheme::Chopin, cfg, trace);
    expectIdentical(a, b, "scratch reuse");
}

} // namespace
} // namespace chopin

#include <gtest/gtest.h>

#include "gfx/geometry.hh"

namespace chopin
{
namespace
{

/** NDC-space triangle with w=1 (the trace generator's convention). */
Triangle
ndcTri(Vec3 a, Vec3 b, Vec3 c)
{
    Triangle t;
    t.v[0] = {a, {1, 0, 0, 1}};
    t.v[1] = {b, {0, 1, 0, 1}};
    t.v[2] = {c, {0, 0, 1, 1}};
    return t;
}

TEST(Geometry, NdcMapsToViewport)
{
    Viewport vp{200, 100};
    std::vector<ScreenTriangle> out;
    DrawStats stats;
    // NDC (-1,-1) is bottom-left => screen (0, height); (1,1) => (width, 0).
    processPrimitive(ndcTri({-1, -1, 0}, {1, -1, 0}, {-1, 1, 0}),
                     Mat4::identity(), vp, false, out, stats);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NEAR(out[0].v[0].pos.x, 0.0f, 1e-4f);
    EXPECT_NEAR(out[0].v[0].pos.y, 100.0f, 1e-4f);
    EXPECT_NEAR(out[0].v[1].pos.x, 200.0f, 1e-4f);
    EXPECT_NEAR(out[0].v[2].pos.y, 0.0f, 1e-4f);
    // NDC z=0 maps to screen depth 0.5.
    EXPECT_NEAR(out[0].v[0].z, 0.5f, 1e-5f);
    EXPECT_EQ(stats.verts_shaded, 3u);
    EXPECT_EQ(stats.tris_in, 1u);
    EXPECT_EQ(stats.tris_rasterized, 1u);
}

TEST(Geometry, BackfaceCullingDropsClockwiseScreenTriangles)
{
    Viewport vp{100, 100};
    std::vector<ScreenTriangle> out;
    DrawStats stats;
    // This NDC winding is counter-clockwise on screen (y flip).
    Triangle front = ndcTri({-0.5f, -0.5f, 0}, {0.5f, -0.5f, 0},
                            {0, 0.5f, 0});
    processPrimitive(front, Mat4::identity(), vp, true, out, stats);
    bool front_survives = !out.empty();

    out.clear();
    DrawStats stats2;
    Triangle back = ndcTri({-0.5f, -0.5f, 0}, {0, 0.5f, 0},
                           {0.5f, -0.5f, 0});
    processPrimitive(back, Mat4::identity(), vp, true, out, stats2);
    bool back_survives = !out.empty();

    // Exactly one of the two windings survives culling.
    EXPECT_NE(front_survives, back_survives);
    EXPECT_EQ(stats.tris_culled + stats2.tris_culled, 1u);
}

TEST(Geometry, FullyOffscreenTriangleIsClipped)
{
    Viewport vp{100, 100};
    std::vector<ScreenTriangle> out;
    DrawStats stats;
    processPrimitive(ndcTri({2, 2, 0}, {3, 2, 0}, {2, 3, 0}),
                     Mat4::identity(), vp, false, out, stats);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(stats.tris_clipped, 1u);
    EXPECT_EQ(stats.tris_rasterized, 0u);
}

TEST(Geometry, BehindNearPlaneIsClipped)
{
    Viewport vp{100, 100};
    std::vector<ScreenTriangle> out;
    DrawStats stats;
    // All vertices behind the near plane: z < -w.
    processPrimitive(ndcTri({0, 0, -3}, {1, 0, -3}, {0, 1, -3}),
                     Mat4::identity(), vp, false, out, stats);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(stats.tris_clipped, 1u);
}

TEST(Geometry, PartialNearClipSplitsIntoTwo)
{
    Viewport vp{100, 100};
    std::vector<ScreenTriangle> out;
    DrawStats stats;
    // One vertex behind the near plane with a perspective transform; the
    // clipper must emit a quad = two triangles.
    Mat4 proj = Mat4::perspective(1.2f, 1.0f, 0.1f, 100.0f);
    Triangle t;
    t.v[0] = {{-1, -1, -5}, {1, 0, 0, 1}};
    t.v[1] = {{1, -1, -5}, {0, 1, 0, 1}};
    t.v[2] = {{0, 1, 0.5f}, {0, 0, 1, 1}}; // behind the camera
    processPrimitive(t, proj, vp, false, out, stats);
    EXPECT_EQ(out.size(), 2u);
    EXPECT_EQ(stats.tris_rasterized, 2u);
}

TEST(Geometry, ModelMatrixApplied)
{
    Viewport vp{100, 100};
    std::vector<ScreenTriangle> out;
    DrawStats stats;
    Mat4 shift = Mat4::translate(0.5f, 0, 0);
    processPrimitive(ndcTri({0, 0, 0}, {0.2f, 0, 0}, {0, 0.2f, 0}), shift,
                     vp, false, out, stats);
    ASSERT_EQ(out.size(), 1u);
    // NDC x=0.5 => screen x=75 of 100.
    EXPECT_NEAR(out[0].v[0].pos.x, 75.0f, 1e-3f);
}

TEST(Geometry, BoundingBoxClamped)
{
    ScreenTriangle t;
    t.v[0] = {{-5, -5}, 0, {}};
    t.v[1] = {{50, 8}, 0, {}};
    t.v[2] = {{8, 50}, 0, {}};
    int x0, y0, x1, y1;
    t.boundingBox(32, 32, x0, y0, x1, y1);
    EXPECT_EQ(x0, 0);
    EXPECT_EQ(y0, 0);
    EXPECT_EQ(x1, 31);
    EXPECT_EQ(y1, 31);
}

TEST(Geometry, ScreenAreaMatchesAnalytic)
{
    ScreenTriangle t;
    t.v[0] = {{0, 0}, 0, {}};
    t.v[1] = {{10, 0}, 0, {}};
    t.v[2] = {{0, 8}, 0, {}};
    EXPECT_NEAR(screenArea(t), 40.0, 1e-4);
    EXPECT_GT(signedScreenArea2(t), 0.0f); // this winding is CCW on screen
}

} // namespace
} // namespace chopin
